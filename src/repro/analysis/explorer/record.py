"""Persist-event capture for the crash-state explorer.

:class:`ExplorationRecorder` attaches to a live controller the same way
the PR-1 persist-order sanitizer does — saving the original bound
methods and shadowing them with instance attributes — and records every
event the crash model needs:

* ``nvm.write_line`` — the durable payload of each line persist,
* ``wpq.enqueue`` — queue admissions (kept for accounting; the ADR model
  treats admission as persistence, so they carry no ordering weight),
* ``running_root.add/set`` and ``recovery_root.add/set`` — the
  register-file side of root crash consistency,
* ``write_data`` brackets (one store-side *operation*) and
  ``_flush_node`` brackets (one cache eviction), which become the
  atomic persist units of the model.

Data-line MAC/plaintext shadows are captured at *operation end*, not at
``write_line`` time: the minor-counter overflow path rewrites covered
lines first and refreshes their MACs afterwards, so only the op-end
values are consistent with the final ciphertext.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.mem.address import Region
from repro.secure import make_controller

KIND_LINE = "line"
KIND_ENQUEUE = "enqueue"
KIND_REG_ADD = "reg_add"
KIND_REG_SET = "reg_set"

#: Cycle gap between driven operations in :func:`record_writes` — wide
#: enough that eager-family delayed root updates land before the next
#: operation begins (and are absorbed into its persist unit) instead of
#: splitting an operation in half.
_OP_GAP = 50_000
#: Final settle tick: far enough out that every scheduled root update
#: has landed, so the recording ends with the tree fully settled and
#: the trailing landings form their own (excludable) persist units —
#: eager's root crash window, in model form.
_SETTLE = 10 ** 9


@dataclass
class PersistEvent:
    """One observed persist-side event.

    ``op``/``flush`` are bracket ids (or -1): which ``write_data``
    operation and which outermost ``_flush_node`` eviction the event
    occurred inside.  ``data_mac``/``plaintext`` are the controller's
    op-end shadows for DATA-region line writes, used to rebuild the
    read-check state of a materialized crash image.
    """

    seq: int
    kind: str
    addr: int = -1
    payload: bytes = b""
    register: str = ""
    slot: int = -1
    value: int = 0
    op: int = -1
    flush: int = -1
    data_mac: int | None = None
    plaintext: bytes | None = None


@dataclass
class Recording:
    """A complete persist-event stream plus everything needed to rebuild
    pre-run state: the baseline NVM image and root-register snapshots at
    attach time, the config, and a factory that builds a fresh controller
    for crash-state materialization."""

    scheme: str
    events: list[PersistEvent]
    baseline_lines: dict[int, bytes]
    baseline_roots: dict[str, list[int]]
    config: Any
    factory: Callable[[], Any]
    counter_bits: int = 56


class ExplorationRecorder:
    """Wraps a controller's persist seams (see :mod:`.seams`) and logs
    :class:`PersistEvent` records until :meth:`detach`."""

    def __init__(self, controller: Any) -> None:
        self.controller = controller
        self.events: list[PersistEvent] = []
        self.baseline_lines: dict[int, bytes] = {}
        self.baseline_roots: dict[str, list[int]] = {}
        self._originals: list[tuple[Any, str, Any]] = []
        self._seq = 0
        self._op = -1
        self._next_op = 0
        self._op_events: list[PersistEvent] = []
        self._flush = -1
        self._next_flush = 0
        self._flush_depth = 0

    # ------------------------------------------------------------------
    def attach(self) -> None:
        ctl = self.controller
        if self._originals:
            raise RuntimeError("recorder already attached")
        self.baseline_lines = dict(ctl.nvm._lines)
        self.baseline_roots = {"running_root": ctl.running_root.snapshot()}
        recovery = getattr(ctl, "recovery_root", None)
        if recovery is not None:
            self.baseline_roots["recovery_root"] = recovery.snapshot()

        self._wrap(ctl, "write_data", self._make_write_data)
        self._wrap(ctl, "_flush_node", self._make_flush_node)
        self._wrap(ctl.wpq, "enqueue", self._make_enqueue)
        self._wrap(ctl.nvm, "write_line", self._make_write_line)
        self._wrap_register(ctl.running_root)
        if recovery is not None:
            self._wrap_register(recovery)

    def detach(self) -> None:
        for obj, attr, original in reversed(self._originals):
            setattr(obj, attr, original)
        self._originals.clear()

    # ------------------------------------------------------------------
    def _wrap(self, obj: Any, attr: str, maker: Callable[[Any], Any]) -> None:
        original = getattr(obj, attr)
        self._originals.append((obj, attr, original))
        setattr(obj, attr, maker(original))

    def _wrap_register(self, register: Any) -> None:
        name = register.name
        orig_add = register.add
        orig_set = register.set
        self._originals.append((register, "add", orig_add))
        self._originals.append((register, "set", orig_set))

        def add(slot: int, delta: int = 1) -> None:
            self._record(KIND_REG_ADD, register=name, slot=slot, value=delta)
            return orig_add(slot, delta)

        def set_(slot: int, value: int) -> None:
            self._record(KIND_REG_SET, register=name, slot=slot, value=value)
            return orig_set(slot, value)

        register.add = add
        register.set = set_

    def _make_write_data(self, original: Callable) -> Callable:
        def write_data(addr: int, data: bytes | None, cycle: int,
                       persist: bool = True):
            fresh = self._op < 0
            if fresh:
                self._op = self._next_op
                self._next_op += 1
                self._op_events = []
            try:
                return original(addr, data, cycle, persist)
            finally:
                if fresh:
                    self._end_op()
        return write_data

    def _end_op(self) -> None:
        ctl = self.controller
        region_of = ctl.amap.region_of
        for event in self._op_events:
            if event.kind == KIND_LINE and \
                    region_of(event.addr) is Region.DATA:
                event.data_mac = ctl.data_macs.get(event.addr)
                event.plaintext = ctl._plaintexts.get(event.addr)
        self._op = -1
        self._op_events = []

    def _make_flush_node(self, original: Callable) -> Callable:
        def flush_node(node: Any, cycle: int):
            self._flush_depth += 1
            if self._flush_depth == 1:
                self._flush = self._next_flush
                self._next_flush += 1
            try:
                return original(node, cycle)
            finally:
                self._flush_depth -= 1
                if self._flush_depth == 0:
                    self._flush = -1
        return flush_node

    def _make_enqueue(self, original: Callable) -> Callable:
        def enqueue(addr: int, cycle: int, metadata: bool = False):
            self._record(KIND_ENQUEUE, addr=addr)
            return original(addr, cycle, metadata=metadata)
        return enqueue

    def _make_write_line(self, original: Callable) -> Callable:
        def write_line(line_addr: int, data: bytes):
            self._record(KIND_LINE, addr=line_addr, payload=bytes(data))
            return original(line_addr, data)
        return write_line

    def _record(self, kind: str, **fields_: Any) -> PersistEvent:
        event = PersistEvent(seq=self._seq, kind=kind, op=self._op,
                             flush=self._flush, **fields_)
        self._seq += 1
        self.events.append(event)
        if self._op >= 0:
            self._op_events.append(event)
        return event

    # ------------------------------------------------------------------
    def recording(self, config: Any,
                  factory: Callable[[], Any] | None = None) -> Recording:
        amap = self.controller.amap
        return Recording(
            scheme=self.controller.name,
            events=self.events,
            baseline_lines=self.baseline_lines,
            baseline_roots=self.baseline_roots,
            config=config,
            factory=factory or materialization_factory(config),
            counter_bits=amap.counter_bits,
        )


def materialization_factory(config: Any) -> Callable[[], Any]:
    """Default controller factory for crash-state materialization.

    Recovery trackers (STAR/AGIT/ASIT) are in-memory observers whose
    shadow structures the explorer does not replay; materialized states
    strip them so recovery takes the tracker-free (counter-summing)
    path.  The persist stream itself is identical either way — see
    docs/crash-exploration.md for the documented simplification.
    """
    if getattr(config, "recovery_tracker", "none") != "none":
        config = config.with_(recovery_tracker="none")
    return lambda: make_controller(config)


# ----------------------------------------------------------------------
def record_writes(config: Any, line_addrs: Sequence[int],
                  factory: Callable[[], Any] | None = None,
                  *, start_cycle: int = 1_000,
                  gap: int = _OP_GAP) -> Recording:
    """Drive persistent stores at ``line_addrs`` directly through a
    fresh controller and return the :class:`Recording`.

    The generous inter-op gap lets delayed root updates (eager family)
    land between operations; the final settle tick flushes the rest as
    trailing stand-alone units — the scheme's crash window, which cut
    enumeration can then include or exclude.
    """
    make = factory or materialization_factory(config)
    controller = make()
    recorder = ExplorationRecorder(controller)
    recorder.attach()
    try:
        cycle = start_cycle
        for addr in line_addrs:
            controller.write_data(addr, None, cycle, persist=True)
            cycle += gap
        controller.tick(cycle + _SETTLE)
    finally:
        recorder.detach()
    return recorder.recording(config, make)


def record_system_run(system: Any, trace: Iterable[Any],
                      factory: Callable[[], Any] | None = None) -> Recording:
    """Record a full :class:`repro.sim.system.System` workload run."""
    recorder = ExplorationRecorder(system.controller)
    recorder.attach()
    try:
        system.run(trace)
        system.controller.tick(system.cycle + _SETTLE)
    finally:
        recorder.detach()
    return recorder.recording(system.config, factory)
