"""The crash-state model: persist units, the ordering DAG, and crash
cuts.

A recorded event stream is grouped into **persist units** — the atomic
granules of the hardware model:

* every outermost ``_flush_node`` bracket is one unit (an eviction
  writes one node; its WPQ admission and line write are inseparable),
* within a ``write_data`` bracket, TREE-region line writes each get
  their *own* unit (an in-operation ancestor persist is a separate WPQ
  entry and is exactly the granule a top-down bug reorders),
* everything else inside the bracket — the counter-block and data-line
  writes plus root-register updates — forms the operation's unit
  (leaf-write-through persists data+counter together; splitting them
  would model a weaker queue than ADR provides),
* events outside any bracket (delayed root-update landings) are
  singleton units.

Units are ordered by a **conflict partial order** built from events:
unit A precedes B iff some non-enqueue event of A conflicts with a
later non-enqueue event of B.  Two events conflict when they touch the
same NVM line, the same ``(register, slot)``, or — only when the scheme
publishes a :class:`~repro.analysis.protocol.ProtocolSpec` — the same
tree branch (interned ``branch_coords`` ancestors).  The spec is what
*licenses* same-branch ordering: its ``Precedes`` obligations are the
scheme's hardware-enforced persist order, so branch-overlapping units
may not reorder.  Schemes without a spec get only the physical
(same-line/same-register) edges — strictly more interleavings, i.e.
the conservative direction.

The unit graph is SCC-condensed (mutually-ordered units are one atomic
granule) and topologically reindexed, after which a **crash cut** is
any downward-closed set of units: the persists that made it to media
before power failed.  :meth:`CrashStateModel.iter_cuts` enumerates cuts
shard-by-shard (by newest unit index) with an optional ``max_lag``
bound on how many older units may still be in flight;
:func:`brute_force_cuts` is the independent reference enumeration used
by the pruning-soundness tests.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.explorer.record import (
    KIND_ENQUEUE, KIND_LINE, KIND_REG_ADD, KIND_REG_SET,
    PersistEvent, Recording,
)
from repro.analysis.protocol import spec_for
from repro.errors import SimulationError
from repro.mem.address import Region


@dataclass
class PersistUnit:
    """An atomic group of persist events (see module docstring)."""

    index: int
    kind: str                       # "op" | "flush" | "ancestor" | "solo"
    events: list[PersistEvent]
    lines: frozenset[int] = frozenset()
    branches: frozenset[tuple[int, int]] = frozenset()
    registers: frozenset[tuple[str, int]] = frozenset()

    @property
    def first_seq(self) -> int:
        return self.events[0].seq


@dataclass
class CrashState:
    """A materialized post-crash image: NVM lines, root registers, and
    the data-MAC/plaintext shadows of the newest durable data writes."""

    cut: frozenset[int]
    lines: dict[int, bytes]
    roots: dict[str, list[int]]
    data_macs: dict[int, int]
    plaintexts: dict[int, bytes]
    canonical: str


class CrashStateModel:
    """Persist units + ordering DAG + cut enumeration for one run."""

    def __init__(self, recording: Recording,
                 max_lag: int | None = None) -> None:
        self.recording = recording
        self.max_lag = max_lag
        self.amap = recording.config.address_map()
        self.spec = spec_for(recording.scheme)
        self.units = self._build_units()
        self._event_domains = self._domain_table()
        self._link_units()
        self._down_cache: dict[int, frozenset[int]] = {}

    # -- unit formation -------------------------------------------------
    def _build_units(self) -> list[PersistUnit]:
        region_of = self.amap.region_of
        groups: dict[tuple, tuple[str, list[PersistEvent]]] = {}
        for event in self.recording.events:
            if event.flush >= 0:
                key, kind = ("flush", event.flush), "flush"
            elif event.op >= 0:
                if event.kind == KIND_LINE and \
                        region_of(event.addr) is Region.TREE:
                    key, kind = ("ancestor", event.seq), "ancestor"
                else:
                    key, kind = ("op", event.op), "op"
            else:
                key, kind = ("solo", event.seq), "solo"
            groups.setdefault(key, (kind, []))[1].append(event)
        raw = sorted(groups.values(), key=lambda entry: entry[1][0].seq)
        units = []
        for index, (kind, events) in enumerate(raw):
            lines, branches, registers = self._footprints(events)
            units.append(PersistUnit(index, kind, events, lines,
                                     branches, registers))
        return units

    def _footprints(self, events: list[PersistEvent]):
        lines: set[int] = set()
        branches: set[tuple[int, int]] = set()
        registers: set[tuple[str, int]] = set()
        for event in events:
            if event.kind == KIND_LINE:
                lines.add(event.addr)
                branches.update(self._branch_of(event))
            elif event.kind in (KIND_REG_ADD, KIND_REG_SET):
                registers.add((event.register, event.slot))
        return frozenset(lines), frozenset(branches), frozenset(registers)

    def _branch_of(self, event: PersistEvent) -> frozenset[tuple[int, int]]:
        """Interned branch coordinates (node + all tree ancestors) of a
        metadata line write; DATA lines have no branch footprint."""
        amap = self.amap
        region = amap.region_of(event.addr)
        if region is Region.COUNTER:
            coords = (0, amap.counter_block_index(event.addr))
        elif region is Region.TREE:
            coords = amap.tree_node_coords(event.addr)
        else:
            return frozenset()
        out = set()
        level, index = coords
        while True:
            out.add((level, index))
            if level + 1 >= amap.tree_levels:
                break
            level, index = amap.parent_coords(level, index)
        return frozenset(out)

    def _domain_table(self) -> dict[int, frozenset]:
        """seq -> conflict tokens of that event (enqueues: empty)."""
        use_branches = self.spec is not None
        table: dict[int, frozenset] = {}
        for unit in self.units:
            for event in unit.events:
                if event.kind == KIND_ENQUEUE:
                    table[event.seq] = frozenset()
                elif event.kind == KIND_LINE:
                    tokens = {("line", event.addr)}
                    if use_branches:
                        tokens.update(("branch", c)
                                      for c in self._branch_of(event))
                    table[event.seq] = frozenset(tokens)
                else:
                    table[event.seq] = frozenset(
                        {("reg", event.register, event.slot)})
        return table

    # -- ordering DAG ---------------------------------------------------
    def _link_units(self) -> None:
        n = len(self.units)
        succs: list[set[int]] = [set() for _ in range(n)]
        cyclic = False
        for i in range(n):
            for j in range(i + 1, n):
                fwd, back = self._directions(self.units[i], self.units[j])
                if fwd:
                    succs[i].add(j)
                if back:
                    succs[j].add(i)
                cyclic = cyclic or (fwd and back)
        if cyclic:
            succs = self._condense(succs)
        try:
            self._topo_reindex(succs)
        except SimulationError:
            # Longer cycles with no mutually-ordered pair still condense.
            self._topo_reindex(self._condense(succs))

    def _directions(self, a: PersistUnit,
                    b: PersistUnit) -> tuple[bool, bool]:
        """(a-before-b, b-before-a) over conflicting event pairs."""
        fwd = back = False
        domains = self._event_domains
        for ea in a.events:
            da = domains[ea.seq]
            if not da:
                continue
            for eb in b.events:
                if da & domains[eb.seq]:
                    if ea.seq < eb.seq:
                        fwd = True
                    else:
                        back = True
                if fwd and back:
                    return True, True
        return fwd, back

    def _condense(self, succs: list[set[int]]) -> list[set[int]]:
        """Kosaraju SCC condensation: mutually-ordered units merge into
        one atomic unit, guaranteeing the unit graph is a DAG."""
        n = len(self.units)
        order: list[int] = []
        visited = [False] * n
        for start in range(n):
            if visited[start]:
                continue
            visited[start] = True
            stack = [(start, iter(succs[start]))]
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if not visited[nxt]:
                        visited[nxt] = True
                        stack.append((nxt, iter(succs[nxt])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()
        preds: list[list[int]] = [[] for _ in range(n)]
        for i, out in enumerate(succs):
            for j in out:
                preds[j].append(i)
        comp = [-1] * n
        comp_count = 0
        for start in reversed(order):
            if comp[start] >= 0:
                continue
            comp[start] = comp_count
            stack2 = [start]
            while stack2:
                node = stack2.pop()
                for nxt in preds[node]:
                    if comp[nxt] < 0:
                        comp[nxt] = comp_count
                        stack2.append(nxt)
            comp_count += 1
        merged_events: list[list[PersistEvent]] = \
            [[] for _ in range(comp_count)]
        merged_kinds: list[set[str]] = [set() for _ in range(comp_count)]
        for i, unit in enumerate(self.units):
            merged_events[comp[i]].extend(unit.events)
            merged_kinds[comp[i]].add(unit.kind)
        units: list[PersistUnit] = []
        for c in range(comp_count):
            events = sorted(merged_events[c], key=lambda e: e.seq)
            kinds = merged_kinds[c]
            kind = kinds.pop() if len(kinds) == 1 else "merged"
            lines, branches, registers = self._footprints(events)
            units.append(PersistUnit(len(units), kind, events,
                                     lines, branches, registers))
        units.sort(key=lambda u: u.first_seq)
        new_succs: list[set[int]] = [set() for _ in range(comp_count)]
        position = {u.first_seq: idx for idx, u in enumerate(units)}
        comp_pos = [0] * comp_count
        for c in range(comp_count):
            comp_pos[c] = position[
                sorted(merged_events[c], key=lambda e: e.seq)[0].seq]
        for i, out in enumerate(succs):
            for j in out:
                a, b = comp_pos[comp[i]], comp_pos[comp[j]]
                if a != b:
                    new_succs[a].add(b)
        self.units = units
        for idx, unit in enumerate(units):
            unit.index = idx
        return new_succs

    def _topo_reindex(self, succs: list[set[int]]) -> None:
        """Kahn topological sort (ties broken by first event seq) and
        unit reindex, so every edge points low -> high index and the
        per-shard cut math (newest-unit = max index) is valid."""
        n = len(self.units)
        indegree = [0] * n
        for out in succs:
            for j in out:
                indegree[j] += 1
        ready = sorted((i for i in range(n) if indegree[i] == 0),
                       key=lambda i: self.units[i].first_seq)
        topo: list[int] = []
        while ready:
            node = ready.pop(0)
            topo.append(node)
            freed = []
            for j in succs[node]:
                indegree[j] -= 1
                if indegree[j] == 0:
                    freed.append(j)
            if freed:
                ready.extend(freed)
                ready.sort(key=lambda i: self.units[i].first_seq)
        if len(topo) != n:
            raise SimulationError(
                "persist-unit graph is cyclic after condensation")
        rank = {old: new for new, old in enumerate(topo)}
        self.units = [self.units[old] for old in topo]
        for idx, unit in enumerate(self.units):
            unit.index = idx
        self.succs: list[frozenset[int]] = [frozenset()] * n
        self.preds: list[frozenset[int]] = [frozenset()] * n
        preds: list[set[int]] = [set() for _ in range(n)]
        for old_i, out in enumerate(succs):
            i = rank[old_i]
            mapped = frozenset(rank[j] for j in out)
            self.succs[i] = mapped
            for j in mapped:
                preds[j].add(i)
        self.preds = [frozenset(p) for p in preds]

    # -- cut enumeration ------------------------------------------------
    def down_set(self, index: int) -> frozenset[int]:
        """``index`` plus all transitive predecessors."""
        cached = self._down_cache.get(index)
        if cached is not None:
            return cached
        out = {index}
        stack = [index]
        while stack:
            node = stack.pop()
            for p in self.preds[node]:
                if p not in out:
                    out.add(p)
                    stack.append(p)
        result = frozenset(out)
        self._down_cache[index] = result
        return result

    def iter_cuts(self, lo: int = 0,
                  hi: int | None = None) -> Iterator[frozenset[int]]:
        """Yield every legal crash cut whose newest unit has (topo)
        index in ``[lo, hi)``; the empty cut is yielded when lo == 0.

        A cut with newest unit *m* is ``down(m)`` plus any subset of the
        older non-predecessors that excludes an *upward-closed* lag set
        R (if a persist is still in flight, everything ordered after it
        is too).  ``max_lag`` bounds |R| — the modelled WPQ depth.
        """
        n = len(self.units)
        hi = n if hi is None else min(hi, n)
        if lo == 0:
            yield frozenset()
        for m in range(max(lo, 0), hi):
            down = self.down_set(m)
            others = [i for i in range(m) if i not in down]
            others_fs = frozenset(others)
            succs_in = {i: [s for s in self.succs[i] if s in others_fs]
                        for i in others}
            yield down | others_fs
            seen: set[frozenset[int]] = {frozenset()}
            frontier: list[frozenset[int]] = [frozenset()]
            while frontier:
                grown: list[frozenset[int]] = []
                for lag in frontier:
                    for i in others:
                        if i in lag:
                            continue
                        if any(s not in lag for s in succs_in[i]):
                            continue
                        bigger = lag | {i}
                        if bigger in seen:
                            continue
                        seen.add(bigger)
                        if self.max_lag is not None and \
                                len(bigger) > self.max_lag:
                            continue
                        grown.append(bigger)
                        yield down | (others_fs - bigger)
                frontier = grown

    # -- state materialization ------------------------------------------
    def state_of(self, cut: frozenset[int]) -> CrashState:
        """Replay the cut's events (in seq order) over the baseline
        image and produce the canonical post-crash state."""
        recording = self.recording
        lines = dict(recording.baseline_lines)
        roots = {name: list(values)
                 for name, values in recording.baseline_roots.items()}
        mask = (1 << recording.counter_bits) - 1
        data_macs: dict[int, int] = {}
        plaintexts: dict[int, bytes] = {}
        events = sorted((event for index in cut
                         for event in self.units[index].events),
                        key=lambda e: e.seq)
        for event in events:
            if event.kind == KIND_LINE:
                lines[event.addr] = event.payload
                if event.data_mac is not None:
                    data_macs[event.addr] = event.data_mac
                if event.plaintext is not None:
                    plaintexts[event.addr] = event.plaintext
            elif event.kind == KIND_REG_ADD:
                counters = roots[event.register]
                counters[event.slot] = \
                    (counters[event.slot] + event.value) & mask
            elif event.kind == KIND_REG_SET:
                roots[event.register][event.slot] = event.value & mask
        canonical = _canonical_hash(recording.scheme, lines, roots,
                                    data_macs)
        return CrashState(cut=cut, lines=lines, roots=roots,
                          data_macs=data_macs, plaintexts=plaintexts,
                          canonical=canonical)


def _canonical_hash(scheme: str, lines: dict[int, bytes],
                    roots: dict[str, list[int]],
                    data_macs: dict[int, int]) -> str:
    """sha256 over the post-crash metadata image.  Line payloads are the
    node-image packing (``to_bytes``) the store wrote, so two cuts that
    leave identical media and register state collapse to one hash."""
    digest = hashlib.sha256()
    digest.update(scheme.encode())
    for addr in sorted(lines):
        digest.update(addr.to_bytes(8, "little"))
        digest.update(lines[addr])
    for name in sorted(roots):
        digest.update(name.encode())
        for value in roots[name]:
            digest.update(value.to_bytes(8, "little"))
    for addr in sorted(data_macs):
        digest.update(addr.to_bytes(8, "little"))
        digest.update((data_macs[addr] & ((1 << 64) - 1))
                      .to_bytes(8, "little"))
    return digest.hexdigest()


def brute_force_cuts(model: CrashStateModel) -> set[frozenset[int]]:
    """Reference enumeration of *all* downward-closed unit sets by
    direct closure growth — a different algorithm from
    :meth:`CrashStateModel.iter_cuts`, used to prove the sharded
    enumeration sound and complete (ignores ``max_lag``)."""
    n = len(model.units)
    preds = model.preds
    results: set[frozenset[int]] = set()
    stack: list[frozenset[int]] = [frozenset()]
    while stack:
        included = stack.pop()
        if included in results:
            continue
        results.add(included)
        for i in range(n):
            if i not in included and preds[i] <= included:
                stack.append(included | {i})
    return results
