"""SARIF 2.1.0 export for reprolint findings.

Produces a single-run SARIF log consumable by GitHub code scanning:
every registered rule is described under ``tool.driver.rules`` (so the
UI can show the paper-facing rationale), new findings become ``error``
results, and baselined findings are included with an ``external``
suppression so they render as acknowledged rather than vanishing.
``partialFingerprints`` carries the same line-independent fingerprint
the text baseline uses, letting code-scanning track a finding across
unrelated edits exactly as ``analysis-baseline.txt`` does.
"""

from __future__ import annotations

from posixpath import join as url_join

from repro.analysis.report import LintReport
from repro.analysis.rules import ALL_RULES, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
#: The fingerprint scheme name; bump the suffix if the recipe changes.
FINGERPRINT_KEY = "reprolintFingerprint/v1"
_TOOL_INFO_URI = "https://github.com/repro/sgx-integrity-tree-repro"

def _rules_table(report: LintReport) -> tuple[list, dict[str, int]]:
    """The run's rule table: every registered reprolint rule, extended
    with any foreign rules (e.g. the crash explorer's REX rules) that
    appear among the report's findings, plus a name -> index map."""
    rules = list(ALL_RULES)
    index = {rule.name: i for i, rule in enumerate(rules)}
    for violation in (*report.violations, *report.baselined):
        if violation.rule.name not in index:
            index[violation.rule.name] = len(rules)
            rules.append(violation.rule)
    return rules, index


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "helpUri": _TOOL_INFO_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _result(violation: Violation, uri_prefix: str,
            suppressed: bool, rule_index: dict[str, int]) -> dict:
    uri = url_join(uri_prefix, violation.path) if uri_prefix \
        else violation.path
    result = {
        "ruleId": violation.rule.id,
        "ruleIndex": rule_index[violation.rule.name],
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri,
                                     "uriBaseId": "SRCROOT"},
                "region": {
                    "startLine": violation.line,
                    "startColumn": violation.column,
                    "snippet": {"text": violation.snippet},
                },
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: violation.fingerprint},
    }
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "accepted in analysis-baseline.txt",
        }]
    return result


def to_sarif(report: LintReport, uri_prefix: str = "") -> dict:
    """Convert a lint report into a SARIF 2.1.0 log dictionary.

    ``uri_prefix`` is the scan root's path relative to the repository
    root (e.g. ``src/repro``), so result URIs resolve from the repo
    root as code scanning expects."""
    rules, rule_index = _rules_table(report)
    results = [_result(v, uri_prefix, suppressed=False,
                       rule_index=rule_index)
               for v in report.violations]
    results += [_result(v, uri_prefix, suppressed=True,
                        rule_index=rule_index)
                for v in report.baselined]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri": _TOOL_INFO_URI,
                    "version": "2.0.0",
                    "rules": [_rule_descriptor(r) for r in rules],
                },
            },
            "columnKind": "unicodeCodePoints",
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root"}},
            },
            "results": results,
        }],
    }
