"""SARIF 2.1.0 export for reprolint findings.

Produces a single-run SARIF log consumable by GitHub code scanning:
every registered rule is described under ``tool.driver.rules`` (so the
UI can show the paper-facing rationale), new findings become ``error``
results, and baselined findings are included with an ``external``
suppression so they render as acknowledged rather than vanishing.
``partialFingerprints`` carries the same line-independent fingerprint
the text baseline uses, letting code-scanning track a finding across
unrelated edits exactly as ``analysis-baseline.txt`` does.
"""

from __future__ import annotations

from posixpath import join as url_join

from repro.analysis.report import LintReport
from repro.analysis.rules import ALL_RULES, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
#: The fingerprint scheme name; bump the suffix if the recipe changes.
FINGERPRINT_KEY = "reprolintFingerprint/v1"
_TOOL_INFO_URI = "https://github.com/repro/sgx-integrity-tree-repro"

_RULE_INDEX = {rule.name: i for i, rule in enumerate(ALL_RULES)}


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "helpUri": _TOOL_INFO_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _result(violation: Violation, uri_prefix: str,
            suppressed: bool) -> dict:
    uri = url_join(uri_prefix, violation.path) if uri_prefix \
        else violation.path
    result = {
        "ruleId": violation.rule.id,
        "ruleIndex": _RULE_INDEX[violation.rule.name],
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri,
                                     "uriBaseId": "SRCROOT"},
                "region": {
                    "startLine": violation.line,
                    "startColumn": violation.column,
                    "snippet": {"text": violation.snippet},
                },
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: violation.fingerprint},
    }
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "accepted in analysis-baseline.txt",
        }]
    return result


def to_sarif(report: LintReport, uri_prefix: str = "") -> dict:
    """Convert a lint report into a SARIF 2.1.0 log dictionary.

    ``uri_prefix`` is the scan root's path relative to the repository
    root (e.g. ``src/repro``), so result URIs resolve from the repo
    root as code scanning expects."""
    results = [_result(v, uri_prefix, suppressed=False)
               for v in report.violations]
    results += [_result(v, uri_prefix, suppressed=True)
                for v in report.baselined]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri": _TOOL_INFO_URI,
                    "version": "2.0.0",
                    "rules": [_rule_descriptor(r) for r in ALL_RULES],
                },
            },
            "columnKind": "unicodeCodePoints",
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root"}},
            },
            "results": results,
        }],
    }
