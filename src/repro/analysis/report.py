"""Text and JSON rendering of a lint run for humans and CI."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.baseline import BaselineEntry
from repro.analysis.rules import ALL_RULES, Violation


@dataclass
class LintReport:
    """Everything one lint run produced, ready to render."""

    violations: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    #: One-line incremental-cache summary (CacheStats.describe()), or
    #: empty when caching was disabled for this run.
    cache_note: str = ""

    @property
    def clean(self) -> bool:
        return not self.violations

    def exit_code(self, strict: bool = False) -> int:
        """Gate: new violations always fail; under ``--strict`` stale
        baseline entries fail too (the baseline must stay honest)."""
        if self.violations:
            return 1
        if strict and self.stale_baseline:
            return 1
        return 0

    # ------------------------------------------------------------------
    def as_text(self) -> str:
        lines: list[str] = []
        for violation in self.violations:
            lines.append(violation.format())
            if violation.snippet:
                lines.append(f"    {violation.snippet}")
        if self.stale_baseline:
            lines.append("")
            lines.append("stale baseline entries (violation no longer "
                         "present — regenerate with --write-baseline):")
            for entry in self.stale_baseline:
                lines.append(f"    {entry.format()}")
        lines.append("")
        lines.append(
            f"{len(self.violations)} violation(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.stale_baseline)} stale baseline entr(ies) in "
            f"{self.files_checked} file(s)")
        if self.cache_note:
            lines.append(self.cache_note)
        return "\n".join(lines)

    def as_json(self) -> str:
        by_rule: dict[str, int] = {}
        for violation in self.violations:
            by_rule[violation.rule.name] = \
                by_rule.get(violation.rule.name, 0) + 1
        return json.dumps({
            "clean": self.clean,
            "files_checked": self.files_checked,
            "cache": self.cache_note or None,
            "violations": [v.as_dict() for v in self.violations],
            "baselined": [v.as_dict() for v in self.baselined],
            "stale_baseline": [
                {"rule": e.rule, "path": e.path, "line": e.line,
                 "fingerprint": e.fingerprint}
                for e in self.stale_baseline],
            "by_rule": by_rule,
        }, indent=2)


def rules_text() -> str:
    """Human-readable rule listing for ``--list-rules``."""
    lines: list[str] = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    rationale: {rule.rationale}")
        lines.append("")
    return "\n".join(lines).rstrip()
