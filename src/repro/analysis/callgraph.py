"""Project-wide call graph over the ``src/repro`` tree.

:class:`ProjectIndex` indexes every function/method and class in the
scanned modules and resolves call expressions to their targets.  The
resolver is deliberately *conservative*: a resolution is either

* **exact** — a single target found through one of the trusted routes
  (same-module bare name; a ``from repro.x import f`` import edge;
  ``self.method`` through the class MRO; ``self.attr.method`` through
  lightweight attribute-type inference of ``self.attr = ClassName(...)``
  and ``self.attr = param`` (annotated parameter) assignments; a local
  variable or parameter whose class is known from an assignment or
  annotation; ``mod.f`` through a ``from repro.pkg import mod``
  submodule import), or
* **ambiguous** — a bucket of same-named methods across the project.

Rules only impose *obligations on callers* through exact resolutions
(otherwise an unrelated ``save()`` somewhere else in the tree would
create phantom call edges), while *summaries of callees* may consult
ambiguous buckets as long as the answer is the conservative one for the
analysis at hand.

The index also memoises per-function CFGs and a few shared summaries
(``may_raise``) used by more than one rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, build_cfg

#: An ambiguous bucket larger than this is treated as unresolvable.
_AMBIGUOUS_CAP = 8

#: Names too generic to resolve through the simple-name bucket.
_SKIP_BUCKET = {"__init__", "__repr__", "__eq__", "__hash__", "run",
                "main", "get", "items", "values", "keys", "append",
                "add", "update", "check", "close", "read", "write"}


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    name: str
    qualname: str            # "relpath::Class.method" or "relpath::func"
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module_key: str
    cls: "ClassInfo | None" = None

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        return names

    def __hash__(self) -> int:
        return hash(self.qualname)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FunctionInfo)
                and other.qualname == self.qualname)


@dataclass
class ClassInfo:
    """One class definition with its methods, bases and simple class
    attributes (constant assignments plus inferred attribute types)."""

    name: str
    relpath: str
    node: ast.ClassDef
    module_key: str
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: constant class-level attributes, e.g. ``name = "scue"``
    const_attrs: dict[str, object] = field(default_factory=dict)
    #: inferred instance attribute types: ``self.store = SITStore(...)``
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one call expression."""

    targets: tuple[FunctionInfo, ...]
    exact: bool

    def __bool__(self) -> bool:
        return bool(self.targets)


_UNRESOLVED = Resolution(targets=(), exact=False)


def _base_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _class_of_call(expr: ast.expr, class_names: set[str]) -> str | None:
    """``ClassName(...)`` or ``pkg.ClassName(...)`` -> ``ClassName``."""
    if isinstance(expr, ast.Call):
        name = _base_name(expr.func)
        if name in class_names:
            return name
    return None


class ProjectIndex:
    """Index of functions, classes and call edges across the tree."""

    def __init__(self, modules: list[tuple[str, ast.Module]]) -> None:
        #: qualname -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> every ClassInfo with that name (usually one)
        self.classes: dict[str, list[ClassInfo]] = {}
        #: simple function name -> bucket of same-named definitions
        self.by_simple_name: dict[str, list[FunctionInfo]] = {}
        #: (module_key, name) -> module-level function
        self.module_funcs: dict[tuple[str, str], FunctionInfo] = {}
        #: module_key -> local name -> candidate (source relpath,
        #: original name) pairs from ``from repro.x.y import name``
        self.imports: dict[str, dict[str,
                           tuple[tuple[str, str], ...]]] = {}
        #: module_key -> local name -> imported submodule relpath
        #: from ``from repro.x import mod`` imports
        self.module_imports: dict[str, dict[str, str]] = {}
        self._cfgs: dict[str, CFG] = {}
        self._local_envs: dict[str, dict[str, str]] = {}
        self._may_raise: dict[str, bool] = {}
        self._callers: dict[str, list[tuple[FunctionInfo, ast.Call]]] | \
            None = None
        for relpath, tree in modules:
            self._index_module(relpath, tree)
        class_names = set(self.classes)
        for bucket in self.classes.values():
            for cls in bucket:
                self._infer_attr_types(cls, class_names)

    # -- construction ---------------------------------------------------
    @staticmethod
    def _module_relpaths(dotted: str) -> tuple[str, ...]:
        """Candidate relpaths for ``repro.serve.storage``: the scan
        root is ``src/repro``, so the module lives at
        ``serve/storage.py`` or, if it is a package, at
        ``serve/storage/__init__.py``."""
        parts = dotted.split(".")
        if parts[0] != "repro":
            return ()
        if len(parts) == 1:
            return ("__init__.py",)
        stem = "/".join(parts[1:])
        return (f"{stem}.py", f"{stem}/__init__.py")

    def _index_imports(self, relpath: str, tree: ast.Module) -> None:
        for node in tree.body:
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            sources = self._module_relpaths(node.module or "")
            if not sources:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                # ``from repro.pkg import name`` is either a function
                # defined in pkg (module or package __init__) or the
                # submodule pkg/name.py — record every candidate;
                # resolution checks which one exists in the index.
                self.imports.setdefault(relpath, {})[local] = tuple(
                    (source, alias.name) for source in sources)
                stem = node.module.split(".", 1)[1].replace(".", "/") \
                    if "." in node.module else ""
                sub = f"{stem}/{alias.name}.py" if stem \
                    else f"{alias.name}.py"
                self.module_imports.setdefault(relpath, {})[local] = sub

    def _index_module(self, relpath: str, tree: ast.Module) -> None:
        self._index_imports(relpath, tree)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    name=node.name, qualname=f"{relpath}::{node.name}",
                    relpath=relpath, node=node, module_key=relpath)
                self._register(info)
                self.module_funcs[(relpath, node.name)] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(relpath, node)

    def _index_class(self, relpath: str, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            name=node.name, relpath=relpath, node=node,
            module_key=relpath,
            bases=tuple(_base_name(b) for b in node.bases if _base_name(b)))
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    name=item.name,
                    qualname=f"{relpath}::{node.name}.{item.name}",
                    relpath=relpath, node=item, module_key=relpath,
                    cls=cls)
                cls.methods[item.name] = info
                self._register(info)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and \
                            isinstance(item.value, ast.Constant):
                        cls.const_attrs[target.id] = item.value.value
        self.classes.setdefault(node.name, []).append(cls)

    def _register(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        if info.name not in _SKIP_BUCKET and \
                not info.name.startswith("__"):
            self.by_simple_name.setdefault(info.name, []).append(info)

    def _infer_attr_types(self, cls: ClassInfo,
                          class_names: set[str]) -> None:
        for method in cls.methods.values():
            args = method.node.args
            annotated = {}
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                ann_name = _base_name(arg.annotation) \
                    if arg.annotation is not None else ""
                if ann_name in class_names:
                    annotated[arg.arg] = ann_name
            for node in ast.walk(method.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                value = node.value
                if value is None:
                    continue
                typed = _class_of_call(value, class_names)
                if typed is None and isinstance(value, ast.Name):
                    # ``self.store = store`` where the parameter is
                    # annotated with a project class.
                    typed = annotated.get(value.id)
                if typed is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        cls.attr_types.setdefault(target.attr, typed)

    # -- lookups --------------------------------------------------------
    def class_named(self, name: str) -> ClassInfo | None:
        bucket = self.classes.get(name, [])
        return bucket[0] if bucket else None

    def mro_method(self, cls: ClassInfo, name: str,
                   _depth: int = 0) -> FunctionInfo | None:
        if _depth > 8:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_cls = self.class_named(base)
            if base_cls is not None:
                found = self.mro_method(base_cls, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def mro_const_attr(self, cls: ClassInfo, attr: str,
                       _depth: int = 0) -> object | None:
        if _depth > 8:
            return None
        if attr in cls.const_attrs:
            return cls.const_attrs[attr]
        for base in cls.bases:
            base_cls = self.class_named(base)
            if base_cls is not None:
                found = self.mro_const_attr(base_cls, attr, _depth + 1)
                if found is not None:
                    return found
        return None

    def mro_attr_type(self, cls: ClassInfo, attr: str,
                      _depth: int = 0) -> str | None:
        if _depth > 8:
            return None
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for base in cls.bases:
            base_cls = self.class_named(base)
            if base_cls is not None:
                found = self.mro_attr_type(base_cls, attr, _depth + 1)
                if found is not None:
                    return found
        return None

    def cfg(self, fn: FunctionInfo) -> CFG:
        got = self._cfgs.get(fn.qualname)
        if got is None:
            got = build_cfg(fn.node)
            self._cfgs[fn.qualname] = got
        return got

    def _local_env(self, fn: FunctionInfo) -> dict[str, str]:
        """Locals / params with a statically-known class type."""
        env = self._local_envs.get(fn.qualname)
        if env is not None:
            return env
        env = {}
        class_names = set(self.classes)
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            ann = arg.annotation
            name = _base_name(ann) if ann is not None else ""
            if name in class_names:
                env[arg.arg] = name
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                typed = _class_of_call(node.value, class_names)
                if typed is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env.setdefault(target.id, typed)
        self._local_envs[fn.qualname] = env
        return env

    # -- resolution -----------------------------------------------------
    def resolve_call(self, call: ast.Call,
                     caller: FunctionInfo) -> Resolution:
        func = call.func
        if isinstance(func, ast.Name):
            target = self.module_funcs.get((caller.module_key, func.id))
            if target is not None:
                return Resolution((target,), exact=True)
            # ``from repro.x.y import f`` import edge.
            for source, orig in self.imports.get(
                    caller.module_key, {}).get(func.id, ()):
                target = self.module_funcs.get((source, orig))
                if target is not None:
                    return Resolution((target,), exact=True)
            return _UNRESOLVED
        if not isinstance(func, ast.Attribute):
            return _UNRESOLVED
        attr = func.attr
        recv = func.value
        # self.method(...) / cls.method(...)
        if isinstance(recv, ast.Name):
            if recv.id in ("self", "cls") and caller.cls is not None:
                method = self.mro_method(caller.cls, attr)
                if method is not None:
                    return Resolution((method,), exact=True)
            else:
                typed = self._local_env(caller).get(recv.id)
                if typed is not None:
                    method = self._method_on(typed, attr)
                    if method is not None:
                        return Resolution((method,), exact=True)
                # ``from repro.pkg import mod`` then ``mod.f(...)``.
                source = self.module_imports.get(
                    caller.module_key, {}).get(recv.id)
                if source is not None:
                    target = self.module_funcs.get((source, attr))
                    if target is not None:
                        return Resolution((target,), exact=True)
        # self.attrname.method(...)
        if isinstance(recv, ast.Attribute) and \
                isinstance(recv.value, ast.Name) and \
                recv.value.id == "self" and caller.cls is not None:
            typed = self.mro_attr_type(caller.cls, recv.attr)
            if typed is not None:
                method = self._method_on(typed, attr)
                if method is not None:
                    return Resolution((method,), exact=True)
        bucket = self.by_simple_name.get(attr, [])
        if 0 < len(bucket) <= _AMBIGUOUS_CAP:
            return Resolution(tuple(bucket), exact=False)
        return _UNRESOLVED

    def _method_on(self, class_name: str, attr: str) -> FunctionInfo | None:
        cls = self.class_named(class_name)
        if cls is None:
            return None
        return self.mro_method(cls, attr)

    # -- inverted edges -------------------------------------------------
    def callers_of(self, fn: FunctionInfo
                   ) -> list[tuple[FunctionInfo, ast.Call]]:
        """Exact-resolution call sites targeting ``fn`` (obligations are
        only imposed through edges we are sure about)."""
        if self._callers is None:
            self._callers = {}
            for caller in self.functions.values():
                for node in ast.walk(caller.node):
                    if not isinstance(node, ast.Call):
                        continue
                    res = self.resolve_call(node, caller)
                    if res.exact:
                        for target in res.targets:
                            self._callers.setdefault(
                                target.qualname, []).append((caller, node))
        return self._callers.get(fn.qualname, [])

    # -- shared summaries ----------------------------------------------
    def may_raise(self, fn: FunctionInfo, _depth: int = 0,
                  _stack: frozenset[str] = frozenset()) -> bool:
        """Can a call to ``fn`` raise?  True when its body contains a
        ``raise`` outside any try, or (transitively, exact edges only,
        depth-limited) calls something that may.  Conservatively False
        on unresolved calls — RPL008 uses this as a *may* filter to cut
        noise, not as a soundness guarantee."""
        cached = self._may_raise.get(fn.qualname)
        if cached is not None:
            return cached
        if fn.qualname in _stack or _depth > 3:
            return False
        protected: set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Try) and node.handlers:
                for sub in ast.walk(node):
                    protected.add(id(sub))
                protected.discard(id(node))
        result = False
        for node in ast.walk(fn.node):
            if id(node) in protected:
                continue
            if isinstance(node, ast.Raise):
                result = True
                break
            if isinstance(node, ast.Call):
                res = self.resolve_call(node, fn)
                if res.exact and any(
                        self.may_raise(t, _depth + 1,
                                       _stack | {fn.qualname})
                        for t in res.targets):
                    result = True
                    break
        self._may_raise[fn.qualname] = result
        return result
