"""Content-hash incremental cache for the lint front-end.

Results are cached at two granularities:

* **per file** — the flat (single-module) rules' violations, keyed by
  the file's content hash; editing one file invalidates one entry;
* **per project** — the interprocedural rules' violations, keyed by a
  digest over every scanned file's ``(relpath, sha)`` pair; editing any
  file re-runs the (cheap, seconds-scale) project phase while the flat
  phase still hits per-file entries.

Both are guarded by an *engine fingerprint* hashed over the source of
the :mod:`repro.analysis` package itself: upgrading a rule or the
engine silently discards stale results.  Cached violations are stored
post-suppression (the suppression comments live in the hashed content,
so the pairing is stable).

The cache is a single JSON file (default: ``.repro-analysis-cache.json``
next to the baseline) and is ignored entirely when a rule selection is
active — selections change what a "result" means.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.rules import Violation, get_rule

_FORMAT = 1


def _engine_fingerprint() -> str:
    """Hash of the analysis package's own source files."""
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def file_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def project_digest(entries: list[tuple[str, str]]) -> str:
    """Digest over every scanned file: any edit anywhere changes it."""
    digest = hashlib.sha256()
    for relpath, sha in sorted(entries):
        digest.update(f"{relpath}={sha}\n".encode())
    return digest.hexdigest()[:16]


def _dump_violation(violation: Violation) -> dict:
    return {
        "rule": violation.rule.name,
        "path": violation.path,
        "line": violation.line,
        "column": violation.column,
        "message": violation.message,
        "snippet": violation.snippet,
    }


def _load_violation(data: dict) -> Violation:
    return Violation(rule=get_rule(data["rule"]), path=data["path"],
                     line=data["line"], column=data["column"],
                     message=data["message"], snippet=data["snippet"])


@dataclass
class CacheStats:
    """What the warm-vs-cold report line is built from."""

    files_total: int = 0
    files_hit: int = 0
    project_hit: bool = False
    project_ran: bool = False

    @property
    def hit_rate(self) -> float:
        if not self.files_total:
            return 0.0
        return self.files_hit / self.files_total

    def describe(self) -> str:
        pct = int(round(self.hit_rate * 100))
        project = "reused" if self.project_hit else (
            "recomputed" if self.project_ran else "skipped")
        return (f"incremental cache: hit rate {pct}% "
                f"({self.files_hit}/{self.files_total} files), "
                f"project phase {project}")


class AnalysisCache:
    """Load/store for the on-disk cache file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.engine = _engine_fingerprint()
        self._files: dict[str, dict] = {}
        self._project: dict | None = None
        self._dirty = False
        self.stats = CacheStats()
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("format") != _FORMAT \
                or raw.get("engine") != self.engine:
            return  # engine or format changed: start cold
        files = raw.get("files")
        if isinstance(files, dict):
            self._files = files
        project = raw.get("project")
        if isinstance(project, dict):
            self._project = project

    # ------------------------------------------------------------------
    def get_file(self, relpath: str, sha: str) -> list[Violation] | None:
        entry = self._files.get(relpath)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return [_load_violation(v) for v in entry["violations"]]
        except (KeyError, TypeError):
            return None

    def put_file(self, relpath: str, sha: str,
                 violations: list[Violation]) -> None:
        self._files[relpath] = {
            "sha": sha,
            "violations": [_dump_violation(v) for v in violations]}
        self._dirty = True

    def get_project(self, digest: str) -> list[Violation] | None:
        entry = self._project
        if entry is None or entry.get("digest") != digest:
            return None
        try:
            return [_load_violation(v) for v in entry["violations"]]
        except (KeyError, TypeError):
            return None

    def put_project(self, digest: str,
                    violations: list[Violation]) -> None:
        self._project = {
            "digest": digest,
            "violations": [_dump_violation(v) for v in violations]}
        self._dirty = True

    def prune(self, live_relpaths: set[str]) -> None:
        """Drop entries for files that no longer exist."""
        dead = set(self._files) - live_relpaths
        for relpath in dead:
            del self._files[relpath]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"format": _FORMAT, "engine": self.engine,
                   "files": self._files, "project": self._project}
        try:
            self.path.write_text(json.dumps(payload))
        except OSError:
            return  # read-only checkout: caching is best-effort
        self._dirty = False
