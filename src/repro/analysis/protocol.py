"""Declarative persist-protocol conformance checking (RPL007/RPL008).

This module is the *engine* behind two project-wide rules registered in
:mod:`repro.analysis.lint`; it has no dependency on the lint framework
itself (only on the CFG/dataflow/callgraph layers), so it can be unit
tested — and reused — in isolation.

**RPL007 — persist-protocol conformance.**  Each update scheme in
``secure/`` declares (via :data:`PROTOCOLS`) the persist-ordering
obligations its recovery argument depends on — the same rules the
runtime sanitizer (:mod:`repro.analysis.sanitizer`) checks on *executed*
paths, here proven on *all static paths*:

* SCUE: the ``Recovery_root`` shortcut update precedes the leaf persist
  (§IV-A2 / :class:`~repro.analysis.sanitizer.ShortcutRootRule`);
* eager family: a leaf persists before any of its ancestors
  (Fig 6a/6b / :class:`~repro.analysis.sanitizer.LeafBeforeParentRule`).

The checker anchors at each scheme's ``_on_leaf_persist`` override,
assigns *roles* to its parameters (the second parameter is the leaf),
tracks parent-tainted locals (tuple-unpacked results of
``self.fetch_node(...)``), and follows role bindings through exact call
edges into helpers — a parent persisted inside a helper called from the
hook is found exactly where it happens.  Obligations are verified with a
forward *must* analysis: an event ``second`` on any reachable static
path where fact ``first`` does not yet hold is a violation.

**RPL008 — exception-unsafe cycle attribution.**  In ``sim/``, a
statement that may raise while sitting between an
:class:`~repro.obs.attribution.AttributionLedger` charge and the
corresponding obs emit leaves the ledger charged for work whose
observability never materialises — ``check_attribution`` would trip only
at runtime, and only if a result is ever built.  Found with a forward
*may* analysis of an ``exposed`` fact (gen at a ledger charge, kill at
any ``self.obs`` touch), filtered to statements that can still reach an
obs emit and are not wrapped in a protective ``try``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import ClassInfo, FunctionInfo, ProjectIndex
from repro.analysis.dataflow import Facts, ForwardAnalysis

#: Recursion depth for following role bindings / summaries into helpers.
_MAX_DEPTH = 3


@dataclass(frozen=True)
class Finding:
    """A protocol-engine finding, not yet a lint Violation (the lint
    layer owns rule metadata, snippets and suppression handling)."""

    relpath: str
    line: int
    column: int
    message: str


# ======================================================================
# Protocol specs (RPL007)
# ======================================================================
@dataclass(frozen=True)
class Precedes:
    """On every static path, event ``first`` must have happened before
    any event ``second``."""

    first: str
    second: str
    clause: str  # paper-facing justification, appended to the message


@dataclass(frozen=True)
class ProtocolSpec:
    """Ordering obligations for a family of schemes, anchored at the
    persist hook every scheme overrides."""

    schemes: tuple[str, ...]
    obligations: tuple[Precedes, ...]
    anchor: str = "_on_leaf_persist"
    #: Index of the leaf parameter in the anchor's signature (after self).
    leaf_param: int = 1


PROTOCOLS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        schemes=("scue",),
        obligations=(
            Precedes(
                first="recovery-root-update",
                second="leaf-persist",
                clause="the Recovery_root shortcut update must precede "
                       "the leaf persist on every path (§IV-A2): a "
                       "crash between them leaves the root behind the "
                       "persisted leaves — the exact inconsistency SCUE "
                       "exists to prevent"),
        ),
    ),
    ProtocolSpec(
        schemes=("eager", "plp", "lazy", "bmt-eager"),
        obligations=(
            Precedes(
                first="leaf-persist",
                second="ancestor-persist",
                clause="eager-family updates persist bottom-up "
                       "(Fig 6a/6b): an ancestor made durable before "
                       "its leaf breaks counter-summing reconstruction "
                       "after a crash"),
        ),
    ),
)


def spec_for(scheme_name: object) -> ProtocolSpec | None:
    for spec in PROTOCOLS:
        if scheme_name in spec.schemes:
            return spec
    return None


# ======================================================================
# Shared AST helpers
# ======================================================================
def _chain_names(expr: ast.expr) -> list[str]:
    """All identifiers along an attribute chain: ``self.a.b(...)`` ->
    ``["self", "a", "b"]`` (calls inside the chain are traversed)."""
    names: list[str] = []
    while True:
        if isinstance(expr, ast.Attribute):
            names.append(expr.attr)
            expr = expr.value
        elif isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, ast.Name):
            names.append(expr.id)
            return names
        else:
            return names


def _fetch_unpack_targets(fn: FunctionInfo) -> set[str]:
    """Parent-tainted locals: first element of a tuple unpack of
    ``self.fetch_node(...)`` (the idiom every parent fetch uses)."""
    tainted: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Tuple) and target.elts
                and isinstance(target.elts[0], ast.Name)):
            continue
        value = node.value
        if isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Attribute) and \
                value.func.attr == "fetch_node":
            tainted.add(target.elts[0].id)
    return tainted


def _enclosing_protected(fn: FunctionInfo) -> set[int]:
    """ids of nodes protected by an enclosing try with handlers or a
    finally (either can rebalance/observe before the exception escapes)."""
    protected: set[int] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Try) and (node.handlers or node.finalbody):
            for stmt in node.body + node.orelse:
                for sub in ast.walk(stmt):
                    protected.add(id(sub))
    return protected


# ======================================================================
# RPL007 checker
# ======================================================================
class ProtocolChecker:
    """Check every scheme class in the index against its declared spec."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.findings: list[Finding] = []
        self._reported: set[tuple[str, int, str]] = set()
        self._visiting: set[tuple] = set()
        self._summaries: dict[tuple, Facts] = {}
        self._mentions: dict[str, bool] = {}
        self._helpers_memo: dict[tuple[str, int],
                                 list[tuple[ast.Call, FunctionInfo]]] = {}

    # -- entry ----------------------------------------------------------
    def run(self) -> list[Finding]:
        for bucket in self.index.classes.values():
            for cls in bucket:
                self._check_class(cls)
        self.findings.sort(key=lambda f: (f.relpath, f.line))
        return self.findings

    def _check_class(self, cls: ClassInfo) -> None:
        spec = spec_for(self.index.mro_const_attr(cls, "name"))
        if spec is None:
            return
        anchor = cls.methods.get(spec.anchor)
        if anchor is None:
            return  # inherits the hook: the defining class is checked
        params = anchor.params
        roles: dict[str, str] = {}
        if len(params) > spec.leaf_param:
            roles[params[spec.leaf_param]] = "leaf"
        self._check_fn(anchor, roles, frozenset(), spec, depth=0)

    # -- events ---------------------------------------------------------
    def _events_in(self, stmt: ast.AST, leaves: set[str],
                   taints: set[str]) -> list[tuple[str, ast.Call]]:
        events: list[tuple[str, ast.Call]] = []
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr == "_persist_node" and node.args and \
                    isinstance(node.args[0], ast.Name):
                arg = node.args[0].id
                if arg in leaves:
                    events.append(("leaf-persist", node))
                elif arg in taints:
                    events.append(("ancestor-persist", node))
            elif attr == "add" and \
                    "recovery_root" in _chain_names(node.func):
                events.append(("recovery-root-update", node))
        return events

    def _helper_calls(self, stmt: ast.AST, fn: FunctionInfo
                      ) -> list[tuple[ast.Call, FunctionInfo]]:
        """Exact-resolved method calls worth following: the callee's body
        mentions the protocol vocabulary."""
        memo_key = (fn.qualname, id(stmt))
        cached = self._helpers_memo.get(memo_key)
        if cached is not None:
            return cached
        out: list[tuple[ast.Call, FunctionInfo]] = []
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "_persist_node":
                continue  # primitive: the event is the call itself
            res = self.index.resolve_call(node, fn)
            if not (res.exact and len(res.targets) == 1):
                continue
            target = res.targets[0]
            if target.cls is None:
                continue
            if self._mentions_vocabulary(target):
                out.append((node, target))
        self._helpers_memo[memo_key] = out
        return out

    def _mentions_vocabulary(self, fn: FunctionInfo) -> bool:
        got = self._mentions.get(fn.qualname)
        if got is None:
            names = {n.attr for n in ast.walk(fn.node)
                     if isinstance(n, ast.Attribute)}
            got = bool(names & {"_persist_node", "recovery_root"})
            self._mentions[fn.qualname] = got
        return got

    def _bind_roles(self, call: ast.Call, target: FunctionInfo,
                    roles: dict[str, str]) -> dict[str, str]:
        params = target.params
        bound: dict[str, str] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and arg.id in roles and \
                    i + 1 < len(params):
                bound[params[i + 1]] = roles[arg.id]
        for kw in call.keywords:
            if kw.arg and isinstance(kw.value, ast.Name) and \
                    kw.value.id in roles:
                bound[kw.arg] = roles[kw.value.id]
        return bound

    # -- summaries ------------------------------------------------------
    def _always_events(self, fn: FunctionInfo, roles: dict[str, str],
                       depth: int) -> Facts:
        """Events guaranteed (must) to have happened once ``fn`` returns,
        under the given role binding."""
        key = (fn.qualname, tuple(sorted(roles.items())))
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._visiting or depth > _MAX_DEPTH:
            return frozenset()
        self._visiting.add(key)
        try:
            analysis = self._analyse(fn, roles, frozenset(), depth)
            exit_facts = analysis.facts_at_exit()
            result = exit_facts if exit_facts is not None else frozenset()
        finally:
            self._visiting.discard(key)
        self._summaries[key] = result
        return result

    # -- core -----------------------------------------------------------
    def _analyse(self, fn: FunctionInfo, roles: dict[str, str],
                 entry: Facts, depth: int) -> ForwardAnalysis:
        leaves = {name for name, role in roles.items() if role == "leaf"}
        taints = {name for name, role in roles.items()
                  if role == "parent"} | _fetch_unpack_targets(fn)

        binding = dict(roles)
        for name in taints:
            binding.setdefault(name, "parent")

        def flow(facts: Facts, node: ast.AST) -> Facts:
            for event, _ in self._events_in(node, leaves, taints):
                facts = facts | {event}
            for call, target in self._helper_calls(node, fn):
                bound = self._bind_roles(call, target, binding)
                facts = facts | self._always_events(target, bound,
                                                    depth + 1)
            return facts

        return ForwardAnalysis(self.index.cfg(fn), flow, must=True,
                               entry_facts=entry)

    def _check_fn(self, fn: FunctionInfo, roles: dict[str, str],
                  entry: Facts, spec: ProtocolSpec, depth: int) -> None:
        if depth > _MAX_DEPTH:
            return
        leaves = {name for name, role in roles.items() if role == "leaf"}
        taints = {name for name, role in roles.items()
                  if role == "parent"} | _fetch_unpack_targets(fn)
        binding = dict(roles)
        for name in taints:
            binding.setdefault(name, "parent")
        analysis = self._analyse(fn, roles, entry, depth)
        cfg = analysis.cfg
        for _, _, node in cfg.nodes():
            facts = None  # computed lazily, only when a check needs it
            for event, call in self._events_in(node, leaves, taints):
                for ob in spec.obligations:
                    if ob.second != event:
                        continue
                    if facts is None:
                        facts = analysis.facts_before(node)
                    if facts is None:  # unreachable statement
                        continue
                    if ob.first not in facts:
                        self._report(fn, call, ob)
            for call, target in self._helper_calls(node, fn):
                before = analysis.facts_before(node)
                if before is None:
                    continue
                bound = self._bind_roles(call, target, binding)
                self._check_fn(target, bound, before, spec, depth + 1)

    def _report(self, fn: FunctionInfo, call: ast.Call,
                ob: Precedes) -> None:
        key = (fn.relpath, call.lineno, ob.second)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(Finding(
            relpath=fn.relpath, line=call.lineno,
            column=call.col_offset + 1,
            message=f"'{ob.second}' reached on a path where "
                    f"'{ob.first}' has not happened — {ob.clause}"))


def check_protocols(index: ProjectIndex) -> list[Finding]:
    """RPL007 entry point: all scheme classes vs. their declared specs."""
    return ProtocolChecker(index).run()


# ======================================================================
# RPL008 checker
# ======================================================================
_EXPOSED = "exposed"


def _is_ledger_alias_assign(stmt: ast.AST) -> str | None:
    """``attr = self.attribution.cycles`` -> ``"attr"``."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
            isinstance(stmt.targets[0], ast.Name) and \
            isinstance(stmt.value, ast.Attribute) and \
            "attribution" in _chain_names(stmt.value):
        return stmt.targets[0].id
    return None


def _charges_ledger(stmt: ast.AST, aliases: set[str]) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.AugAssign) and \
                isinstance(node.target, ast.Subscript):
            base = node.target.value
            chain = _chain_names(base)
            if (isinstance(base, ast.Name) and base.id in aliases) or \
                    "attribution" in chain:
                return True
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "charge":
            chain = _chain_names(node.func)
            if "attribution" in chain or aliases & set(chain):
                return True
    return False


def _touches_obs(stmt: ast.AST) -> bool:
    return any(isinstance(node, ast.Attribute) and node.attr == "obs"
               for node in ast.walk(stmt))


def check_attribution_escape(index: ProjectIndex,
                             path_prefixes: tuple[str, ...] = ("sim/",)
                             ) -> list[Finding]:
    """RPL008 entry point: raising statements between a ledger charge
    and the obs emit it funds."""
    findings: list[Finding] = []
    for fn in index.functions.values():
        if not fn.relpath.startswith(path_prefixes):
            continue
        aliases = {alias for stmt in ast.walk(fn.node)
                   if (alias := _is_ledger_alias_assign(stmt))}
        has_charge = any(_charges_ledger(s, aliases)
                         for s in ast.walk(fn.node))
        has_emit = any(_touches_obs(s) for s in ast.walk(fn.node))
        if not (has_charge and has_emit):
            continue
        cfg = index.cfg(fn)

        def flow(facts: Facts, node: ast.AST) -> Facts:
            if _touches_obs(node):
                facts = facts - {_EXPOSED}
            if _charges_ledger(node, aliases):
                facts = facts | {_EXPOSED}
            return facts

        analysis = ForwardAnalysis(cfg, flow, must=False)
        protected = _enclosing_protected(fn)

        def emit_after(block, idx) -> bool:
            if any(_touches_obs(later)
                   for later in block.stmts[idx + 1:]):
                return True
            return any(
                cfg.can_reach(succ, lambda b: any(_touches_obs(s)
                                                  for s in b.stmts))
                for succ, _ in block.succs)

        for block, idx, node in cfg.nodes():
            if id(node) in protected:
                continue
            risky = _first_raising_call(node, fn, index)
            if risky is None:
                continue
            facts = analysis.facts_before(node)
            if facts is None or _EXPOSED not in facts:
                continue
            if not emit_after(block, idx):
                continue
            findings.append(Finding(
                relpath=fn.relpath, line=risky.lineno,
                column=risky.col_offset + 1,
                message=f"'{fn.name}' may raise here between an "
                        "AttributionLedger charge and the obs emit it "
                        "funds — the cycles are charged but never "
                        "observed, so check_attribution trips only at "
                        "runtime (emit or re-balance before raising)"))
    findings.sort(key=lambda f: (f.relpath, f.line))
    return findings


def _first_raising_call(stmt: ast.AST, fn: FunctionInfo,
                        index: ProjectIndex) -> ast.Call | None:
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        res = index.resolve_call(node, fn)
        if res and any(index.may_raise(t) for t in res.targets):
            return node
    return None
