"""Async atomicity analyses over the CFG + call-graph engine.

Two passes live here, both consuming the interference-point marks the
CFG builder records for async functions (:mod:`repro.analysis.cfg`):

* :func:`check_await_atomicity` (RPL012) — a read-modify-write race
  detector for event-loop state.  asyncio gives atomicity *between*
  awaits for free: on one loop, code that never suspends cannot be
  interleaved with.  The pass therefore hunts the one shape that breaks
  the guarantee: a ``self.*`` attribute read on one side of an
  interference point and written back on the other, with no asyncio
  lock covering both sides.  Locksets are lexical (``async with
  self._lock:`` regions) and *transfer through the call graph*: an
  exact-resolved helper call contributes the helper's attribute
  reads/writes at the call site, under the caller's lockset — so a
  mutation routed through ``self._bump()`` inside a locked region is
  credited as locked, and the same helper called from an unlocked
  region is not.

* :func:`check_blocking_calls` (RPL014) — flags synchronous blocking
  work reachable on the event loop: ``time.sleep``, ``subprocess``,
  sqlite connections/cursors, synchronous file IO and the known
  process-supervising repro helpers, found either directly inside an
  ``async def`` or transitively through exact call edges into sync
  helpers.  Work handed to ``asyncio.to_thread`` / ``run_in_executor``
  is passed as a *reference*, never a call expression, so offloaded
  paths naturally produce no call edge and are accepted.

Deliberate approximations (documented, conservative for a *may*
analysis):

* attributes holding asyncio/threading synchronization primitives
  (``self._wake = asyncio.Event()``) are exempt from RPL012 — they are
  the coordination fabric itself, task-safe by contract;
* a lock is recognised lexically: the context expression of a
  ``with``/``async with`` whose dotted name is a known lock attribute
  of the class (assigned from ``asyncio.Lock()`` et al.) or whose last
  component mentions ``lock``/``mutex``/``sem``/``cond``;
* leaving an ``async with`` awaits ``__aexit__``; the CFG marks that as
  interference *after* the body's last leaf, so a read made under a
  lock and written back after the region correctly crosses an
  uncovered interference point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.cfg import CFG, Block

__all__ = [
    "Finding",
    "check_await_atomicity",
    "check_blocking_calls",
]


@dataclass(frozen=True)
class Finding:
    """One atomicity finding, in the shape lint.py rules re-wrap."""

    relpath: str
    line: int
    column: int
    message: str


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ======================================================================
# shared: synchronization-primitive and lock-attribute discovery
# ======================================================================

#: Constructor names whose instances are task-safe coordination objects.
_PRIMITIVE_CTORS = frozenset({
    "Lock", "RLock", "Event", "Condition", "Semaphore",
    "BoundedSemaphore", "Queue", "LifoQueue", "PriorityQueue",
})

#: Constructor names that specifically build mutual-exclusion locks.
_LOCK_CTORS = frozenset({"Lock", "RLock"})

_LOCKISH_TOKENS = ("lock", "mutex", "sem", "cond")


def _ctor_name(value: ast.expr | None) -> str | None:
    """``asyncio.Lock()`` / ``threading.RLock()`` / ``Lock()`` -> name."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        root = func.value
        if isinstance(root, ast.Name) and root.id in (
                "asyncio", "threading", "multiprocessing"):
            return func.attr
        return None
    if isinstance(func, ast.Name):
        return func.id if func.id in _PRIMITIVE_CTORS else None
    return None


def _class_attr_ctors(cls_node: ast.ClassDef) -> dict[str, str]:
    """``self.X = asyncio.Event()`` assignments anywhere in the class:
    attribute name -> primitive constructor name."""
    found: dict[str, str] = {}
    for node in ast.walk(cls_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        ctor = _ctor_name(node.value)
        if ctor is None or ctor not in _PRIMITIVE_CTORS:
            continue
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                found.setdefault(target.attr, ctor)
    return found


def _primitive_attrs(fn: FunctionInfo) -> frozenset[str]:
    if fn.cls is None:
        return frozenset()
    return frozenset(_class_attr_ctors(fn.cls.node))


def _is_lock_expr(expr: ast.expr, lock_attrs: frozenset[str]) -> str | None:
    """Dotted lock identity of a with-context expression, or None."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1].lower()
    if dotted.startswith("self.") and dotted[5:] in lock_attrs:
        return dotted
    if any(token in last for token in _LOCKISH_TOKENS):
        return dotted
    return None


def _lock_attr_names(fn: FunctionInfo) -> frozenset[str]:
    if fn.cls is None:
        return frozenset()
    return frozenset(attr for attr, ctor
                     in _class_attr_ctors(fn.cls.node).items()
                     if ctor in _LOCK_CTORS)


def lexical_locksets(fn_node: ast.AST, lock_attrs: frozenset[str]
                     ) -> dict[int, frozenset[str]]:
    """id(any AST node) -> the set of locks lexically held there.

    The context expression itself is *outside* the region (the acquire
    await runs unlocked), which is what makes a release/re-acquire pair
    show up as an uncovered interference point between two regions.
    """
    held: dict[int, frozenset[str]] = {}

    def visit(node: ast.AST, locks: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not fn_node:
            return  # nested defs own their own locksets
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = frozenset(
                name for item in node.items
                if (name := _is_lock_expr(item.context_expr,
                                          lock_attrs)) is not None)
            for item in node.items:
                visit(item.context_expr, locks)
            for stmt in node.body:
                visit(stmt, locks | acquired)
            return
        held[id(node)] = locks
        for child in ast.iter_child_nodes(node):
            visit(child, locks)

    visit(fn_node, frozenset())
    return held


# ======================================================================
# RPL012 — await-atomicity
# ======================================================================

#: Method calls on a ``self.X`` receiver that mutate the container.
_MUTATOR_METHODS = frozenset({
    "append", "add", "update", "pop", "popitem", "remove", "discard",
    "clear", "extend", "insert", "setdefault", "sort", "appendleft",
    "popleft",
})


class _AccessSummaries:
    """Per-function ``self.*`` read/write sets, with exact same-class
    helper calls folded in (depth-limited) — the call-graph half of the
    lockset story."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._memo: dict[str, tuple[frozenset[str], frozenset[str]]] = {}

    def of_function(self, fn: FunctionInfo, _depth: int = 0,
                    _stack: frozenset[str] = frozenset()
                    ) -> tuple[frozenset[str], frozenset[str]]:
        cached = self._memo.get(fn.qualname)
        if cached is not None:
            return cached
        if fn.qualname in _stack or _depth > 3:
            return frozenset(), frozenset()
        reads: set[str] = set()
        writes: set[str] = set()
        for _, _, stmt in self.index.cfg(fn).nodes():
            r, w = self.of_statement(stmt, fn, _depth, _stack)
            reads |= r
            writes |= w
        result = (frozenset(reads), frozenset(writes))
        self._memo[fn.qualname] = result
        return result

    def of_statement(self, stmt: ast.AST, fn: FunctionInfo,
                     _depth: int = 0,
                     _stack: frozenset[str] = frozenset()
                     ) -> tuple[frozenset[str], frozenset[str]]:
        skip = _primitive_attrs(fn)
        reads: set[str] = set()
        writes: set[str] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and node.attr not in skip:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    writes.add(node.attr)
                else:
                    reads.add(node.attr)
            if isinstance(node, ast.AugAssign) and \
                    isinstance(node.target, ast.Attribute) and \
                    isinstance(node.target.value, ast.Name) and \
                    node.target.value.id == "self" and \
                    node.target.attr not in skip:
                reads.add(node.target.attr)  # augassign reads too
            if isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)) and \
                    isinstance(node.value, ast.Attribute) and \
                    isinstance(node.value.value, ast.Name) and \
                    node.value.value.id == "self" and \
                    node.value.attr not in skip:
                writes.add(node.value.attr)  # self.X[k] = ... mutates X
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Attribute) and \
                        isinstance(recv.value, ast.Name) and \
                        recv.value.id == "self" and \
                        node.func.attr in _MUTATOR_METHODS and \
                        recv.attr not in skip:
                    writes.add(recv.attr)  # self.X.append(...) mutates X
                elif isinstance(recv, ast.Name) and recv.id == "self" \
                        and fn.cls is not None:
                    res = self.index.resolve_call(node, fn)
                    if res.exact and len(res.targets) == 1 and \
                            res.targets[0].cls is not None and \
                            not isinstance(res.targets[0].node,
                                           ast.AsyncFunctionDef):
                        r, w = self.of_function(
                            res.targets[0], _depth + 1,
                            _stack | {fn.qualname})
                        reads |= r
                        writes |= w
        return frozenset(reads), frozenset(writes)


def check_await_atomicity(index: ProjectIndex,
                          relpaths: frozenset[str] | None = None
                          ) -> list[Finding]:
    """Run the RPL012 race search over every async function."""
    summaries = _AccessSummaries(index)
    findings: list[Finding] = []
    for fn in index.functions.values():
        if relpaths is not None and fn.relpath not in relpaths:
            continue
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        findings.extend(_check_async_function(fn, index, summaries))
    findings.sort(key=lambda f: (f.relpath, f.line, f.column))
    return findings


def _check_async_function(fn: FunctionInfo, index: ProjectIndex,
                          summaries: _AccessSummaries) -> list[Finding]:
    cfg = index.cfg(fn)
    lock_attrs = _lock_attr_names(fn)
    locks = lexical_locksets(fn.node, lock_attrs)
    stmt_info: dict[int, tuple[frozenset[str], frozenset[str]]] = {}
    for _, _, stmt in cfg.nodes():
        stmt_info[id(stmt)] = summaries.of_statement(stmt, fn)

    def locks_at(stmt: ast.AST) -> frozenset[str]:
        got = locks.get(id(stmt))
        if got is not None:
            return got
        # Guard expressions are stored detached from their statement;
        # fall back to any walked child we do know.
        for sub in ast.walk(stmt):
            got = locks.get(id(sub))
            if got is not None:
                return got
        return frozenset()

    findings: list[Finding] = []
    reported: set[tuple[str, int]] = set()

    def report(attr: str, read: ast.AST, write: ast.AST,
               await_line: int) -> None:
        line = getattr(write, "lineno", 1)
        if (attr, line) in reported:
            return
        reported.add((attr, line))
        findings.append(Finding(
            relpath=fn.relpath, line=line,
            column=getattr(write, "col_offset", 0) + 1,
            message=(
                f"'self.{attr}' is read at line "
                f"{getattr(read, 'lineno', '?')} and written back here "
                f"across an await at line {await_line} with no covering "
                "asyncio lock — another task can run at the await and "
                "this write clobbers its update; hold one lock across "
                "the read-modify-write or restructure it to stay on one "
                "side of the await")))

    for block in cfg.blocks:
        for idx, stmt in enumerate(block.stmts):
            reads, writes = stmt_info[id(stmt)]
            for attr in reads:
                _search_from(cfg, fn, stmt, block, idx, attr, stmt_info,
                             locks_at, report)
    return findings


def _search_from(cfg: CFG, fn: FunctionInfo, read_stmt: ast.AST,
                 block: Block, idx: int, attr: str,
                 stmt_info: dict[int, tuple[frozenset[str],
                                            frozenset[str]]],
                 locks_at, report) -> None:
    """BFS forward from one read, looking for a write of ``attr``
    reached across an interference point not covered by a lock held at
    the read."""
    read_locks = locks_at(read_stmt)

    def uncovered(stmt: ast.AST) -> bool:
        return not (locks_at(stmt) & read_locks)

    # The read's own statement: an await inside it happens after the
    # attribute load, so a same-statement write is already a race.
    start_line = None
    if cfg.interferes(read_stmt) and uncovered(read_stmt):
        start_line = getattr(read_stmt, "lineno", 0)
        _, writes_here = stmt_info[id(read_stmt)]
        if attr in writes_here:
            report(attr, read_stmt, read_stmt, start_line)
            return
    if cfg.interferes_after(read_stmt) and uncovered(read_stmt) and \
            start_line is None:
        start_line = getattr(read_stmt, "lineno", 0)

    seen: set[tuple[int, int, int | None]] = set()
    queue: list[tuple[Block, int, int | None]] = [
        (block, idx + 1, start_line)]
    while queue:
        cur_block, cur_idx, crossed = queue.pop()
        if cur_idx >= len(cur_block.stmts):
            for succ, _kind in cur_block.succs:
                key = (succ.bid, 0, crossed)
                if key not in seen:
                    seen.add(key)
                    queue.append((succ, 0, crossed))
            continue
        stmt = cur_block.stmts[cur_idx]
        reads, writes = stmt_info[id(stmt)]
        if attr in reads:
            continue  # superseding read: later writes use fresh state
        if attr in writes:
            at = crossed
            if at is None and cfg.interferes(stmt) and uncovered(stmt):
                # the write's own await runs before the store completes
                at = getattr(stmt, "lineno", 0)
            if at is not None:
                report(attr, read_stmt, stmt, at)
            continue  # any write kills the pending read
        if crossed is None and cfg.interferes(stmt) and uncovered(stmt):
            crossed = getattr(stmt, "lineno", 0)
        if crossed is None and cfg.interferes_after(stmt) and \
                uncovered(stmt):
            crossed = getattr(stmt, "lineno", 0)
        key = (cur_block.bid, cur_idx + 1, crossed)
        if key not in seen:
            seen.add(key)
            queue.append((cur_block, cur_idx + 1, crossed))


# ======================================================================
# RPL014 — blocking calls reachable inside async defs
# ======================================================================

#: Exact dotted calls that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep",
    "os.system": "os.system",
    "sqlite3.connect": "sqlite3.connect",
    "urllib.request.urlopen": "urllib.request.urlopen",
    "socket.create_connection": "socket.create_connection",
}

#: Dotted prefixes that block (any subprocess entry point).
_BLOCKING_PREFIXES = ("subprocess.",)

#: Attribute calls that perform synchronous file IO on any receiver.
#: Metadata-only operations (is_file/exists/stat/unlink/mkdir) are
#: deliberately exempt: they are cheap point lookups the serve layer
#: relies on for loop-synchronous classification.
_SYNC_IO_ATTRS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
})

#: Known process-supervising repro helpers (each runs worker processes
#: or a whole campaign to completion).
_BLOCKING_HELPERS = frozenset({"run_cell", "execute_cell",
                               "run_campaign"})

#: Cursor/connection methods that hit sqlite synchronously.
_SQLITE_METHODS = frozenset({
    "execute", "executemany", "executescript", "commit", "rollback",
    "fetchone", "fetchall", "fetchmany", "close",
})


def _sqlite_attrs(cls_node: ast.ClassDef) -> frozenset[str]:
    """Attributes of the class that hold a sqlite connection: assigned
    from ``sqlite3.connect(...)`` directly or through a local."""
    found: set[str] = set()
    for method in cls_node.body:
        if not isinstance(method, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
            continue
        locals_from_connect: set[str] = set()
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_connect = (isinstance(value, ast.Call)
                          and _dotted(value.func) == "sqlite3.connect")
            from_local = (isinstance(value, ast.Name)
                          and value.id in locals_from_connect)
            if not (is_connect or from_local):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and is_connect:
                    locals_from_connect.add(target.id)
                elif isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    found.add(target.attr)
    return frozenset(found)


def _describe_blocking_call(call: ast.Call,
                            fn: FunctionInfo) -> str | None:
    """Why this call blocks the event loop, or None when it does not."""
    func = call.func
    dotted = _dotted(func)
    if dotted is not None:
        if dotted in _BLOCKING_DOTTED:
            return f"'{dotted}()' blocks the calling thread"
        if any(dotted.startswith(p) for p in _BLOCKING_PREFIXES):
            return f"'{dotted}()' runs a subprocess synchronously"
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "'open()' performs synchronous file IO"
        if func.id in _BLOCKING_HELPERS:
            return (f"'{func.id}()' supervises worker processes to "
                    "completion")
    if isinstance(func, ast.Attribute):
        if func.attr in _SYNC_IO_ATTRS:
            return (f"'.{func.attr}()' performs synchronous file IO")
        if func.attr in _BLOCKING_HELPERS:
            return (f"'{func.attr}()' supervises worker processes to "
                    "completion")
        if func.attr in _SQLITE_METHODS and fn.cls is not None:
            recv = func.value
            if isinstance(recv, ast.Attribute) and \
                    isinstance(recv.value, ast.Name) and \
                    recv.value.id == "self" and \
                    recv.attr in _sqlite_attrs(fn.cls.node):
                return (f"'self.{recv.attr}.{func.attr}()' is a "
                        "synchronous sqlite operation")
    return None


class _BlockingSummaries:
    """Memoised "does calling this sync function block?" summaries,
    propagated over exact call edges only."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._memo: dict[str, str | None] = {}

    def why_blocking(self, fn: FunctionInfo, _depth: int = 0,
                     _stack: frozenset[str] = frozenset()) -> str | None:
        cached = self._memo.get(fn.qualname, "?")
        if cached != "?":
            return cached
        if fn.qualname in _stack or _depth > 4:
            return None
        result: str | None = None
        for _, _, stmt in self.index.cfg(fn).nodes():
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                why = _describe_blocking_call(node, fn)
                if why is not None:
                    result = why
                    break
                res = self.index.resolve_call(node, fn)
                if res.exact and len(res.targets) == 1 and \
                        not isinstance(res.targets[0].node,
                                       ast.AsyncFunctionDef):
                    deeper = self.why_blocking(
                        res.targets[0], _depth + 1,
                        _stack | {fn.qualname})
                    if deeper is not None:
                        result = (f"{deeper} (reached via "
                                  f"'{res.targets[0].name}')")
                        break
            if result is not None:
                break
        self._memo[fn.qualname] = result
        return result


def check_blocking_calls(index: ProjectIndex,
                         relpaths: frozenset[str] | None = None
                         ) -> list[Finding]:
    """Run the RPL014 search over every async function."""
    summaries = _BlockingSummaries(index)
    findings: list[Finding] = []
    for fn in index.functions.values():
        if relpaths is not None and fn.relpath not in relpaths:
            continue
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        cfg = index.cfg(fn)
        for _, _, stmt in cfg.nodes():
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                why = _describe_blocking_call(node, fn)
                if why is None:
                    res = index.resolve_call(node, fn)
                    if res.exact and len(res.targets) == 1 and \
                            not isinstance(res.targets[0].node,
                                           ast.AsyncFunctionDef):
                        callee = res.targets[0]
                        why = summaries.why_blocking(callee)
                        if why is not None:
                            why = (f"{why} (reached via "
                                   f"'{callee.name}')")
                if why is None:
                    continue
                findings.append(Finding(
                    relpath=fn.relpath,
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0) + 1,
                    message=(
                        f"{why} inside async '{fn.name}' — the event "
                        "loop stalls for its whole duration; offload "
                        "with await asyncio.to_thread(...) or "
                        "loop.run_in_executor(...)")))
    findings.sort(key=lambda f: (f.relpath, f.line, f.column))
    return findings
