"""WITCHER-style runtime crash-consistency sanitizer.

The sanitizer instruments a live :class:`SecureMemoryController`: it
wraps the WPQ's ``enqueue`` (the simulator's definition of *persisted*
under ADR), the NVM device's counted ``write_line``, the scheme's root
registers and the eviction-flush hook, records a persist-order trace,
and checks — online at every persist and again at every simulated
crash point — that security-metadata persists obey the scheme's
*declared* ordering rules.  A violation raises
:class:`~repro.errors.PersistOrderingError` naming the offending write
pair, so a scheme that silently breaks the ordering the paper's
recovery argument depends on fails loudly in the test suite instead of
producing subtly wrong Fig 5/13 numbers.

Per-scheme rules (selected automatically from ``controller.name``):

* every scheme — :class:`AttributablePersistRule`: a counted NVM store
  must be preceded by a WPQ enqueue of the same line (every persist is
  attributable to ADR semantics; ``poke_line`` injection paths are
  deliberately unhooked);
* eager-family (``eager``, ``plp``, ``lazy``, ``bmt-eager``) —
  :class:`LeafBeforeParentRule`: when a protocol persist (not a cache
  eviction) pushes both a counter block and one of its SIT ancestors in
  the same operation cycle, the counter block must go first, matching
  the bottom-up update discipline of Fig 6a/6b;
* ``scue`` — :class:`ShortcutRootRule`: a counter-block persist must be
  covered by a preceding ``Recovery_root`` shortcut update (§IV-A2 —
  the root may never lag the persisted leaves), plus
  :class:`RecoveryRootSumRule`: at the crash point the Recovery_root
  must equal the per-subtree sums of the on-media leaf dummy counters,
  the exact §IV-B counter-summing invariant recovery relies on.

Eviction flushes run under the controller's ``_flush_node`` hook and
are exempt from the *protocol* ordering rules: a victim's writeback
order is the cache's choice, not the scheme's persist discipline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import PersistOrderingError
from repro.mem.address import Region

#: Recent-event window kept for violation messages.
TRACE_WINDOW = 64


@dataclass(frozen=True)
class PersistEvent:
    """One observed persist-domain event."""

    seq: int
    kind: str          # "enqueue" | "write" | "root"
    addr: int | None   # line address (enqueue/write)
    cycle: int | None  # simulated cycle for enqueues
    metadata: bool = False
    in_flush: bool = False
    register: str = ""  # root-register name for kind == "root"
    slot: int | None = None
    delta: int | None = None

    def describe(self) -> str:
        if self.kind == "root":
            return (f"#{self.seq} root-update {self.register}"
                    f"[{self.slot}] += {self.delta}")
        where = "flush" if self.in_flush else "protocol"
        kind = "metadata" if self.metadata else "data"
        cycle = f" @cycle {self.cycle}" if self.cycle is not None else ""
        return (f"#{self.seq} {self.kind} {kind} line "
                f"{self.addr:#x} ({where}){cycle}")


class SanitizerRule:
    """Base class: rules receive the event stream and may veto."""

    name = "abstract"

    def __init__(self, sanitizer: "PersistOrderSanitizer") -> None:
        self.sanitizer = sanitizer
        self.amap = sanitizer.controller.amap

    def on_event(self, event: PersistEvent) -> None:
        """Called for every recorded event, in order."""

    def at_crash(self) -> None:
        """Called at the simulated crash point, before ADR/eADR
        flushing runs."""


class AttributablePersistRule(SanitizerRule):
    """Every counted NVM store must have a matching, earlier WPQ
    enqueue: a persist the ADR model cannot see is a simulator bug."""

    name = "attributable-persist"

    def __init__(self, sanitizer: "PersistOrderSanitizer") -> None:
        super().__init__(sanitizer)
        self._pending: dict[int, int] = {}

    def on_event(self, event: PersistEvent) -> None:
        if event.kind == "enqueue":
            self._pending[event.addr] = \
                self._pending.get(event.addr, 0) + 1
        elif event.kind == "write":
            addr = event.addr
            credit = self._pending.get(addr, 0)
            if credit <= 0:
                self.sanitizer.fail(
                    self.name, event,
                    f"NVM line {addr:#x} was stored without a "
                    "preceding WPQ enqueue — this persist is invisible "
                    "to the ADR crash model")
            else:
                self._pending[addr] = credit - 1


class LeafBeforeParentRule(SanitizerRule):
    """Eager-family discipline (Fig 6a/6b): within one protocol persist
    operation, a counter block must reach the persist domain before any
    of its SIT ancestors."""

    name = "leaf-before-parent"

    def __init__(self, sanitizer: "PersistOrderSanitizer") -> None:
        super().__init__(sanitizer)
        self._cycle: int | None = None
        self._tree_persists: list[PersistEvent] = []

    def on_event(self, event: PersistEvent) -> None:
        if event.kind != "enqueue" or not event.metadata \
                or event.in_flush:
            return
        if event.cycle != self._cycle:
            self._cycle = event.cycle
            self._tree_persists = []
        region = self.amap.region_of(event.addr)
        if region is Region.TREE:
            self._tree_persists.append(event)
            return
        if region is not Region.COUNTER or not self._tree_persists:
            return
        leaf_index = self.amap.counter_block_index(event.addr)
        ancestors = set(self.amap.branch_coords(leaf_index)[1:])
        for earlier in self._tree_persists:
            coords = self.amap.tree_node_coords(earlier.addr)
            if coords in ancestors:
                self.sanitizer.fail(
                    self.name, event,
                    f"counter block {leaf_index} persisted AFTER its "
                    f"ancestor node (level {coords[0]}, index "
                    f"{coords[1]}) in the same operation — eager "
                    "updates must persist bottom-up",
                    pair=earlier)


class ShortcutRootRule(SanitizerRule):
    """SCUE §IV-A2: the Recovery_root shortcut update precedes the leaf
    persist, so the root register never lags the persisted leaves."""

    name = "shortcut-root-before-leaf"

    def __init__(self, sanitizer: "PersistOrderSanitizer") -> None:
        super().__init__(sanitizer)
        self._credits = 0
        self._last_root: PersistEvent | None = None

    def on_event(self, event: PersistEvent) -> None:
        if event.kind == "root" and event.register == "recovery_root":
            self._credits += 1
            self._last_root = event
            return
        if event.kind != "enqueue" or not event.metadata \
                or event.in_flush:
            return
        if self.amap.region_of(event.addr) is not Region.COUNTER:
            return
        if self._credits <= 0:
            self.sanitizer.fail(
                self.name, event,
                f"counter block at {event.addr:#x} persisted with no "
                "preceding Recovery_root shortcut update — a crash "
                "here leaves the root behind the persisted leaves "
                "(the exact inconsistency SCUE exists to prevent)")
        else:
            self._credits -= 1


class RecoveryRootSumRule(SanitizerRule):
    """SCUE §IV-B crash-point invariant: Recovery_root equals the
    per-top-level-subtree sums of the on-media leaf dummy counters.
    Only meaningful under strict leaf write-through without Osiris
    relaxation (otherwise media leaves legitimately lag)."""

    name = "recovery-root-sum"

    def at_crash(self) -> None:
        controller = self.sanitizer.controller
        config = controller.config
        if not config.leaf_write_through or config.osiris_limit:
            return
        amap = self.amap
        mask = (1 << amap.counter_bits) - 1
        subtree = amap.arity ** (amap.tree_levels - 1)
        sums = [0] * amap.arity
        for index in range(amap.num_counter_blocks):
            leaf = controller.store.load(0, index, counted=False)
            slot = (index // subtree) % amap.arity
            sums[slot] = (sums[slot]
                          + leaf.dummy_counter(amap.counter_bits)) & mask
        stored = controller.recovery_root.counters
        for slot, (want, got) in enumerate(zip(sums, stored)):
            if want != got:
                self.sanitizer.fail(
                    self.name, None,
                    f"at the crash point Recovery_root[{slot}] = {got} "
                    f"but the persisted leaves of subtree {slot} sum "
                    f"to {want} — counter-summing reconstruction "
                    "(§IV-B) would wrongly report an attack")


_EAGER_FAMILY = ("eager", "plp", "lazy", "bmt-eager")


def rules_for(sanitizer: "PersistOrderSanitizer") -> list[SanitizerRule]:
    """The declared ordering rules for the attached controller."""
    controller = sanitizer.controller
    rules: list[SanitizerRule] = [AttributablePersistRule(sanitizer)]
    if controller.name in _EAGER_FAMILY:
        rules.append(LeafBeforeParentRule(sanitizer))
    if controller.name == "scue":
        rules.append(ShortcutRootRule(sanitizer))
        rules.append(RecoveryRootSumRule(sanitizer))
    return rules


class PersistOrderSanitizer:
    """Instrument one controller; active until its first crash.

    After ``crash()`` the sanitizer goes dormant: recovery-time traffic
    runs under a different regime (peek/poke reconstruction) that the
    ordering rules do not describe.  Re-attach for a fresh run.
    """

    def __init__(self, controller, collect: bool = False) -> None:
        self.controller = controller
        #: ``collect=True`` gathers violations instead of raising —
        #: for tests that want to inspect everything that fired.
        self.collect = collect
        self.violations: list[str] = []
        self.events: deque[PersistEvent] = deque(maxlen=TRACE_WINDOW)
        self.active = False
        self._seq = 0
        self._flush_depth = 0
        self._originals: dict[str, object] = {}
        self.rules = rules_for(self)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _record(self, event: PersistEvent) -> None:
        self.events.append(event)
        for rule in self.rules:
            rule.on_event(event)

    def _next_event(self, **kwargs) -> PersistEvent:
        self._seq += 1
        return PersistEvent(seq=self._seq,
                            in_flush=self._flush_depth > 0, **kwargs)

    def fail(self, rule_name: str, event: PersistEvent | None,
             message: str, pair: PersistEvent | None = None) -> None:
        detail = [f"persist-ordering violation [{rule_name}] in scheme "
                  f"'{self.controller.name}': {message}"]
        if pair is not None and event is not None:
            detail.append("offending write pair:")
            detail.append(f"  earlier: {pair.describe()}")
            detail.append(f"  later:   {event.describe()}")
        elif event is not None:
            detail.append(f"offending event: {event.describe()}")
        if self.events:
            detail.append("recent persist trace:")
            detail.extend(f"  {e.describe()}"
                          for e in list(self.events)[-8:])
        text = "\n".join(detail)
        self.violations.append(text)
        if not self.collect:
            raise PersistOrderingError(text)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def attach(self) -> "PersistOrderSanitizer":
        if self.active:
            return self
        controller = self.controller
        wpq, nvm = controller.wpq, controller.nvm

        orig_enqueue = wpq.enqueue
        orig_write = nvm.write_line
        orig_flush_node = controller._flush_node
        orig_crash = controller.crash
        self._originals = {
            "enqueue": orig_enqueue, "write_line": orig_write,
            "_flush_node": orig_flush_node, "crash": orig_crash,
        }

        def enqueue(line_addr, cycle, metadata=False):
            if self.active:
                self._record(self._next_event(
                    kind="enqueue", addr=line_addr, cycle=cycle,
                    metadata=metadata))
            return orig_enqueue(line_addr, cycle, metadata=metadata)

        def write_line(line_addr, data):
            if self.active:
                self._record(self._next_event(
                    kind="write", addr=line_addr, cycle=None,
                    metadata=line_addr >= controller.amap.counter_base))
            return orig_write(line_addr, data)

        def flush_node(node, cycle):
            self._flush_depth += 1
            try:
                return orig_flush_node(node, cycle)
            finally:
                self._flush_depth -= 1

        def crash():
            if self.active:
                self.check_crash_point()
                self.active = False
            return orig_crash()

        wpq.enqueue = enqueue
        nvm.write_line = write_line
        controller._flush_node = flush_node
        controller.crash = crash

        recovery_root = getattr(controller, "recovery_root", None)
        if recovery_root is not None:
            orig_root_add = recovery_root.add
            self._originals["recovery_root.add"] = orig_root_add

            def root_add(slot, delta=1):
                if self.active:
                    self._record(self._next_event(
                        kind="root", addr=None, cycle=None,
                        register=recovery_root.name, slot=slot,
                        delta=delta))
                return orig_root_add(slot, delta)

            recovery_root.add = root_add

        self.active = True
        return self

    def detach(self) -> None:
        """Restore the instrumented methods (tests that reuse one
        controller across regimes)."""
        if not self._originals:
            return
        controller = self.controller
        controller.wpq.enqueue = self._originals["enqueue"]
        controller.nvm.write_line = self._originals["write_line"]
        controller._flush_node = self._originals["_flush_node"]
        controller.crash = self._originals["crash"]
        root_add = self._originals.get("recovery_root.add")
        if root_add is not None:
            controller.recovery_root.add = root_add
        self._originals = {}
        self.active = False

    # ------------------------------------------------------------------
    def check_crash_point(self) -> None:
        """Run the crash-point invariants (called automatically from
        the instrumented ``crash``; callable directly for mid-run
        checks)."""
        for rule in self.rules:
            rule.at_crash()


def attach_sanitizer(controller,
                     collect: bool = False) -> PersistOrderSanitizer:
    """Instrument ``controller`` and return the active sanitizer."""
    return PersistOrderSanitizer(controller, collect=collect).attach()
