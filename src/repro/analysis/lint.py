"""reprolint — the AST lint enforcing simulator-domain invariants.

Two kinds of checks coexist:

* **flat rules** (:class:`LintRule`) — single-module AST scans, exactly
  as in the original lint: RPL003–RPL006 plus the direct-discard half
  of RPL002;
* **project rules** (:class:`ProjectRule`) — path-sensitive checks that
  run once over the whole scanned tree with a
  :class:`~repro.analysis.callgraph.ProjectIndex` in hand: the
  interprocedural RPL001/RPL002 upgrades and the protocol checkers
  RPL007/RPL008 built on the CFG + dataflow engine
  (:mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` /
  :mod:`repro.analysis.protocol`).

Both kinds produce the same :class:`~repro.analysis.rules.Violation`
records, honour the same ``# reprolint: disable=<rule>`` suppression
comments and share the fingerprint baseline unchanged.

The front-end is incremental: flat results are cached per file by
content hash, project results by a whole-tree digest (see
:mod:`repro.analysis.cache`), and cache misses can be fanned out over a
process pool (``jobs > 1``).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.analysis.atomicity import (
    check_await_atomicity,
    check_blocking_calls,
)
from repro.analysis.cache import (
    AnalysisCache,
    CacheStats,
    file_sha,
    project_digest,
)
from repro.analysis.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.dataflow import Facts, ForwardAnalysis
from repro.analysis.explorer.seams import EXPLORED_ROOT_REGISTERS
from repro.analysis.protocol import (
    check_attribution_escape,
    check_protocols,
)
from repro.analysis.rules import ALL_RULES, RuleInfo, Violation, get_rule

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([\w\-, ]+)")
_FIXTURE_PATH_RE = re.compile(r"#\s*reprolint-fixture-path:\s*(\S+)")


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, path: Path, relpath: str,
                 source: str | None = None) -> None:
        self.path = path
        self.source = path.read_text() if source is None else source
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.relpath = relpath
        # Fixture files may pin the path rules see (test machinery).
        for line in self.lines[:3]:
            match = _FIXTURE_PATH_RE.search(line)
            if match:
                self.relpath = match.group(1)
                break
        self.suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                names = {token.strip()
                         for token in match.group(1).split(",")
                         if token.strip()}
                self.suppressions[lineno] = names

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule_name: str) -> bool:
        names = self.suppressions.get(lineno, ())
        return rule_name in names or "all" in names


def _attr_name(node: ast.expr) -> str:
    """Name of an assignment target: ``x`` or ``obj.x`` -> ``x``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted form of an attribute chain for messages."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class LintRule:
    """Base class: path scoping + the shared violation constructor."""

    #: Path prefixes (relative to the scan root) the rule applies to.
    #: An empty tuple means everywhere.
    paths: tuple[str, ...] = ()
    #: Path prefixes exempt from the rule.
    exclude: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.info: RuleInfo = get_rule(self.name)

    name = ""  # overridden

    def applies(self, relpath: str) -> bool:
        if any(relpath.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.paths:
            return True
        return any(relpath.startswith(prefix) for prefix in self.paths)

    def violation(self, mod: ParsedModule, node: ast.AST,
                  message: str) -> Violation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(rule=self.info, path=mod.relpath, line=lineno,
                         column=col + 1, message=message,
                         snippet=mod.snippet(lineno))

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        raise NotImplementedError


class ProjectRule(LintRule):
    """A rule that needs the whole scanned tree and the call graph."""

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        raise NotImplementedError("project rules run via check_project")

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        raise NotImplementedError

    @staticmethod
    def by_relpath(modules: list[ParsedModule]
                   ) -> dict[str, ParsedModule]:
        return {mod.relpath: mod for mod in modules}

    def violation_at(self, mods: dict[str, ParsedModule], relpath: str,
                     line: int, column: int, message: str) -> Violation:
        mod = mods.get(relpath)
        snippet = mod.snippet(line) if mod is not None else ""
        return Violation(rule=self.info, path=relpath, line=line,
                         column=column, message=message, snippet=snippet)


# ======================================================================
# RPL001 — every persist attributable to ADR semantics (interprocedural)
# ======================================================================
class NvmDirectStoreRule(ProjectRule):
    """A counted ``write_line`` must be covered by a WPQ ``enqueue`` on
    every static path — in the same function or in every caller leading
    to it.  The upgrade from the flat rule: an enqueue performed by the
    caller (``_persist_node`` enqueues, ``SITStore.save`` stores) now
    satisfies the rule, so ``tree/store.py`` no longer needs a blanket
    exclusion; conversely a *branch* that reaches the store without the
    enqueue is flagged even when the happy path enqueues.

    ``poke_line`` is no longer a tracked store: poke paths are the
    deliberate crash-injection surface (the runtime sanitizer leaves
    them unhooked for the same reason).  Call sites that falsify a
    parameter guard protecting the store (``save(node, counted=False)``
    against ``if counted: write_line``) are exempt — the store cannot
    execute on that edge."""

    name = "nvm-direct-store"
    exclude = ("mem/", "crash/", "analysis/")

    _STORE_CALLS = ("write_line",)
    _ENQ = "enq"

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        mods = self.by_relpath(modules)
        self._analyses: dict[str, ForwardAnalysis] = {}
        self._always_enq: dict[str, bool] = {}
        self._stmt_maps: dict[str, dict[int, ast.AST]] = {}
        self._index = index
        for fn in index.functions.values():
            if fn.relpath not in mods or not self.applies(fn.relpath):
                continue
            cfg = index.cfg(fn)
            stores = [(stmt, call) for _, _, stmt in cfg.nodes()
                      for call in self._stores_in(stmt)]
            if not stores:
                continue
            analysis = self._enq_analysis(fn)
            for stmt, call in stores:
                facts = analysis.facts_before(stmt)
                if facts is None:  # unreachable
                    continue
                if self._ENQ in facts or self._gens_enq(stmt, fn):
                    continue
                if self._covered_by_callers(fn, call):
                    continue
                yield self.violation_at(
                    mods, fn.relpath, call.lineno, call.col_offset + 1,
                    f"direct NVM store '{_dotted(call.func)}' is not "
                    "covered by a wpq.enqueue on every path — neither "
                    f"'{fn.name}' nor its callers enqueue before this "
                    "store, so the persist is invisible to the ADR "
                    "crash model")
        for mod in modules:
            if self.applies(mod.relpath):
                yield from self._unindexed_scopes(mod, index)

    # -- store/enqueue detection ---------------------------------------
    def _stores_in(self, stmt: ast.AST) -> list[ast.Call]:
        return [node for node in ast.walk(stmt)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._STORE_CALLS]

    def _gens_enq(self, stmt: ast.AST, fn: FunctionInfo) -> bool:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "enqueue":
                return True
            res = self._index.resolve_call(node, fn)
            if res.exact and len(res.targets) == 1 and \
                    self._always_enqueues(res.targets[0]):
                return True
        return False

    def _always_enqueues(self, fn: FunctionInfo) -> bool:
        """Does every path through ``fn`` perform an enqueue?"""
        cached = self._always_enq.get(fn.qualname)
        if cached is not None:
            return cached
        # Provisional False breaks recursion cycles (a recursive helper
        # is conservatively assumed not to enqueue on every path).
        self._always_enq[fn.qualname] = False
        exit_facts = self._enq_analysis(fn).facts_at_exit()
        result = exit_facts is not None and self._ENQ in exit_facts
        self._always_enq[fn.qualname] = result
        return result

    def _enq_analysis(self, fn: FunctionInfo) -> ForwardAnalysis:
        got = self._analyses.get(fn.qualname)
        if got is None:
            def flow(facts: Facts, node: ast.AST) -> Facts:
                if self._gens_enq(node, fn):
                    return facts | {self._ENQ}
                return facts
            got = ForwardAnalysis(self._index.cfg(fn), flow, must=True)
            self._analyses[fn.qualname] = got
        return got

    # -- caller credit ---------------------------------------------------
    def _stmt_map(self, fn: FunctionInfo) -> dict[int, ast.AST]:
        """id(any AST node) -> the CFG leaf statement containing it."""
        got = self._stmt_maps.get(fn.qualname)
        if got is None:
            got = {}
            for _, _, stmt in self._index.cfg(fn).nodes():
                for sub in ast.walk(stmt):
                    got[id(sub)] = stmt
            self._stmt_maps[fn.qualname] = got
        return got

    def _covered_by_callers(self, fn: FunctionInfo,
                            store: ast.Call) -> bool:
        guards = _param_guards(fn, store)
        callers = self._index.callers_of(fn)
        if not callers:
            return False
        for caller, call in callers:
            if not self.applies(caller.relpath):
                continue  # exempt domain (crash injection, devices)
            if guards and _site_falsifies(call, guards, fn.params):
                continue  # this edge cannot reach the store
            if not self._site_has_enqueue(caller, call, {fn.qualname}):
                return False
        return True

    def _site_has_enqueue(self, caller: FunctionInfo, call: ast.Call,
                          visited: set[str]) -> bool:
        stmt = self._stmt_map(caller).get(id(call))
        if stmt is None:
            return True  # call inside a nested def: out of scope
        facts = self._enq_analysis(caller).facts_before(stmt)
        if facts is None:
            return True  # unreachable call site
        if self._ENQ in facts or self._gens_enq(stmt, caller):
            # The stmt's own enqueue-gen covers helper chains like
            # "stall = enqueue(...) + helper_that_stores(...)".
            return True
        return self._entry_credited(caller, visited)

    def _entry_credited(self, fn: FunctionInfo,
                        visited: set[str]) -> bool:
        """Every exact call path into ``fn`` carries an enqueue."""
        if fn.qualname in visited:
            return False
        visited = visited | {fn.qualname}
        callers = self._index.callers_of(fn)
        if not callers:
            return False
        return all(
            not self.applies(caller.relpath)
            or self._site_has_enqueue(caller, call, visited)
            for caller, call in callers)

    # -- fallback for code outside indexed functions ---------------------
    def _unindexed_scopes(self, mod: ParsedModule,
                          index: ProjectIndex) -> Iterator[Violation]:
        """Module-level / nested-function stores keep the original flat
        'enqueue earlier in the same scope' check."""
        indexed = {id(fn.node) for fn in index.functions.values()
                   if fn.relpath == mod.relpath}
        scopes: dict[int, dict[str, list[ast.Call]]] = {}

        def visit(node: ast.AST, scope_id: int, skip: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_scope, child_skip = scope_id, skip
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    child_scope = id(child)
                    child_skip = id(child) in indexed
                if not child_skip and isinstance(child, ast.Call) and \
                        isinstance(child.func, ast.Attribute):
                    attr = child.func.attr
                    bucket = scopes.setdefault(
                        scope_id, {"enqueue": [], "store": []})
                    if attr == "enqueue":
                        bucket["enqueue"].append(child)
                    elif attr in self._STORE_CALLS:
                        bucket["store"].append(child)
                visit(child, child_scope, child_skip)

        visit(mod.tree, id(mod.tree), False)
        for bucket in scopes.values():
            enqueue_lines = [c.lineno for c in bucket["enqueue"]]
            first_enqueue = min(enqueue_lines) if enqueue_lines else None
            for call in bucket["store"]:
                if first_enqueue is not None and \
                        call.lineno >= first_enqueue:
                    continue
                yield self.violation(
                    mod, call,
                    f"direct NVM store '{_dotted(call.func)}' with no "
                    "preceding wpq.enqueue in this scope — the persist "
                    "is invisible to the ADR crash model")


def _param_guards(fn: FunctionInfo,
                  target: ast.AST) -> list[tuple[str, bool]]:
    """Enclosing ``if <param>:`` / ``if not <param>:`` guards of
    ``target``: (param name, truth value required to reach it)."""
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(fn.node):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    params = set(fn.params)
    guards: list[tuple[str, bool]] = []
    current: ast.AST = target
    while id(current) in parents:
        parent = parents[id(current)]
        if isinstance(parent, ast.If):
            in_body = any(current is stmt or any(
                sub is current for sub in ast.walk(stmt))
                for stmt in parent.body)
            in_else = not in_body and any(current is stmt or any(
                sub is current for sub in ast.walk(stmt))
                for stmt in parent.orelse)
            test = parent.test
            name, positive = "", True
            if isinstance(test, ast.Name):
                name = test.id
            elif isinstance(test, ast.UnaryOp) and \
                    isinstance(test.op, ast.Not) and \
                    isinstance(test.operand, ast.Name):
                name, positive = test.operand.id, False
            if name in params and (in_body or in_else):
                guards.append((name, positive if in_body else not positive))
        current = parent
    return guards


def _site_falsifies(call: ast.Call, guards: list[tuple[str, bool]],
                    params: list[str]) -> bool:
    """Does this call site pass a literal argument contradicting a guard
    the store sits under?"""
    offset = 1 if params and params[0] in ("self", "cls") else 0
    for param, needed in guards:
        value: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == param:
                value = kw.value
        if value is None and param in params:
            pos = params.index(param) - offset
            if 0 <= pos < len(call.args):
                value = call.args[pos]
        if isinstance(value, ast.Constant) and \
                bool(value.value) != needed:
            return True
    return False


# ======================================================================
# RPL002 — no dropped verification results
# ======================================================================
class UncheckedVerifyRule(LintRule):
    """Flat half: a ``verify``/``matches`` call whose boolean result is
    discarded right where it is made."""

    name = "unchecked-verify"
    paths = ("secure/", "tree/", "crash/", "cme/")

    _VERIFY_CALLS = ("verify", "matches")

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Expr):
                continue
            value = node.value
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Attribute) and \
                    value.func.attr in self._VERIFY_CALLS:
                yield self.violation(
                    mod, node,
                    f"result of '{_dotted(value.func)}(...)' is "
                    "discarded — a verification that cannot fail is a "
                    "silent security hole")


class UncheckedVerifyProjectRule(ProjectRule):
    """Interprocedural half of RPL002: (a) discarding the result of a
    call whose callee *returns* a verification result is as much a
    dropped check as discarding ``verify()`` itself; (b) a verify
    result assigned to a local that is never consulted on some path to
    return is a check that silently cannot fail on that path."""

    name = "unchecked-verify"
    paths = ("secure/", "tree/", "crash/", "cme/")

    _VERIFY_CALLS = ("verify", "matches")

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        mods = self.by_relpath(modules)
        self._index = index
        self._returns_verify_memo: dict[str, bool] = {}
        for fn in index.functions.values():
            if fn.relpath not in mods or not self.applies(fn.relpath):
                continue
            cfg = index.cfg(fn)
            yield from self._discarded_callee_results(fn, cfg, mods)
            yield from self._unconsumed_results(fn, cfg, mods)

    # -- (a) Expr-discard of a verify-returning callee -------------------
    def _discarded_callee_results(self, fn: FunctionInfo, cfg,
                                  mods) -> Iterator[Violation]:
        for _, _, stmt in cfg.nodes():
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)):
                continue
            call = stmt.value
            if isinstance(call.func, ast.Attribute) and \
                    call.func.attr in self._VERIFY_CALLS:
                continue  # the flat rule reports direct discards
            res = self._index.resolve_call(call, fn)
            if res.exact and len(res.targets) == 1 and \
                    self._returns_verify(res.targets[0]):
                yield self.violation_at(
                    mods, fn.relpath, stmt.lineno, stmt.col_offset + 1,
                    f"result of '{_dotted(call.func)}(...)' is "
                    f"discarded — '{res.targets[0].name}' returns a "
                    "verification result, so dropping it silences the "
                    "check across the call boundary")

    def _returns_verify(self, fn: FunctionInfo, _depth: int = 0) -> bool:
        cached = self._returns_verify_memo.get(fn.qualname)
        if cached is not None:
            return cached
        if _depth > 3:
            return False
        self._returns_verify_memo[fn.qualname] = False  # cycle guard
        assigned: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    self._is_verify_call(node.value):
                assigned.add(node.targets[0].id)
        result = False
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if self._is_verify_call(value):
                result = True
                break
            if isinstance(value, ast.Name) and value.id in assigned:
                result = True
                break
            if isinstance(value, ast.Call):
                res = self._index.resolve_call(value, fn)
                if res.exact and len(res.targets) == 1 and \
                        self._returns_verify(res.targets[0], _depth + 1):
                    result = True
                    break
        self._returns_verify_memo[fn.qualname] = result
        return result

    def _is_verify_call(self, value: ast.expr) -> bool:
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in self._VERIFY_CALLS)

    # -- (b) assigned-but-never-consulted results ------------------------
    def _unconsumed_results(self, fn: FunctionInfo, cfg,
                            mods) -> Iterator[Violation]:
        index = self._index

        def fact_for(name: str, node: ast.AST) -> str:
            return f"unconsumed|{name}|{node.lineno}|{node.col_offset}"

        def flow(facts: Facts, node: ast.AST) -> Facts:
            reads = {sub.id for sub in ast.walk(node)
                     if isinstance(sub, ast.Name)
                     and isinstance(sub.ctx, ast.Load)}
            if reads:
                facts = frozenset(f for f in facts
                                  if f.split("|")[1] not in reads)
            if isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                facts = frozenset(f for f in facts
                                  if f.split("|")[1] != name)
                if name != "_" and self._value_is_verify(node.value, fn):
                    facts = facts | {fact_for(name, node)}
            return facts

        analysis = ForwardAnalysis(cfg, flow, must=False)
        exit_facts = analysis.facts_at_exit() or frozenset()
        for fact in sorted(exit_facts):
            _, name, lineno, col = fact.split("|")
            yield self.violation_at(
                mods, fn.relpath, int(lineno), int(col) + 1,
                f"verification result '{name}' is assigned but never "
                "consulted on some path to return — on that path the "
                "check cannot fail")

    def _value_is_verify(self, value: ast.expr,
                         fn: FunctionInfo) -> bool:
        if self._is_verify_call(value):
            return True
        if isinstance(value, ast.Call):
            res = self._index.resolve_call(value, fn)
            return (res.exact and len(res.targets) == 1
                    and self._returns_verify(res.targets[0]))
        return False


# ======================================================================
# RPL003 — integer-only cycle arithmetic
# ======================================================================
class FloatCycleArithRule(LintRule):
    """Assignments to ``*cycle*`` names (and returns from ``*cycle*``
    functions) must not contain true division or float literals unless
    explicitly converted with ``int(...)`` at the top level."""

    name = "float-cycle-arith"
    paths = ("mem/timing.py", "mem/wpq.py", "mem/nvm.py", "sim/")

    @staticmethod
    def _has_float_math(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if isinstance(sub, ast.Constant) and \
                    isinstance(sub.value, float):
                return True
        return False

    @staticmethod
    def _int_converted(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "int")

    def _flag(self, value: ast.expr | None) -> bool:
        return (value is not None
                and not self._int_converted(value)
                and self._has_float_math(value))

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets, value = [node.target], node.value
            if value is not None:
                for target in targets:
                    name = _attr_name(target)
                    if "cycle" in name.lower() and self._flag(value):
                        yield self.violation(
                            mod, node,
                            f"float arithmetic assigned to cycle "
                            f"counter '{name}' — cycle counts are "
                            "exact integers (use // or wrap in int())")
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and "cycle" in node.name.lower():
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Return) and \
                            self._flag(sub.value):
                        yield self.violation(
                            mod, sub,
                            f"'{node.name}' returns float arithmetic — "
                            "cycle quantities are exact integers")


# ======================================================================
# RPL004 — no assert-based runtime validation
# ======================================================================
class BareAssertRule(LintRule):
    """``assert`` disappears under ``python -O``; library code must
    raise typed :mod:`repro.errors` exceptions instead."""

    name = "bare-assert"
    exclude = ("analysis/",)

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    mod, node,
                    "bare assert in library code is stripped under "
                    "python -O — raise a typed repro.errors exception")


# ======================================================================
# RPL005 — counters registered before increment
# ======================================================================
class StatCounterDisciplineRule(LintRule):
    """Chained ``stats.counter("x").add(...)`` creates-or-fetches the
    counter on the hot path (and silently mints a fresh zero counter on
    a typo); counters must be bound once at construction."""

    name = "stat-counter-discipline"
    exclude = ("util/stats.py",)

    _FACTORY_CALLS = ("counter", "mean", "histogram")

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add"):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Call) and \
                    isinstance(receiver.func, ast.Attribute) and \
                    receiver.func.attr in self._FACTORY_CALLS:
                yield self.violation(
                    mod, node,
                    f"'{_dotted(receiver.func)}(...).add(...)' "
                    "registers the statistic at increment time — bind "
                    "it to an attribute at construction instead")


# ======================================================================
# RPL006 — cycle charges must be observable
# ======================================================================
class ObsUnattributedCyclesRule(LintRule):
    """A scheme method that advances cycle time (``self....charge``,
    ``self....enqueue``, ``self._persist_node``) must also emit a trace
    event through ``self.obs`` so the attribution report can explain
    where those cycles went.

    Scoped to the scheme subclasses: the shared base controller emits
    the per-op breakdown events (``write_op``/``read_op``) itself, so it
    — and non-controller helpers — are exempt.
    """

    name = "obs-unattributed-cycles"
    paths = ("secure/",)
    exclude = ("secure/base.py", "secure/__init__.py", "secure/roots.py")

    _CYCLE_CALLS = ("charge", "enqueue", "_persist_node")

    @staticmethod
    def _rooted_at_self(node: ast.expr) -> bool:
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for cls in ast.walk(mod.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                charges: list[ast.Call] = []
                emits = False
                for node in ast.walk(func):
                    if isinstance(node, ast.Attribute) and \
                            node.attr == "obs":
                        emits = True
                    if isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Attribute) and \
                            node.func.attr in self._CYCLE_CALLS and \
                            self._rooted_at_self(node.func):
                        charges.append(node)
                if charges and not emits:
                    yield self.violation(
                        mod, charges[0],
                        f"'{cls.name}.{func.name}' charges cycles via "
                        f"'{_dotted(charges[0].func)}(...)' but never "
                        "touches self.obs — the cycles are invisible "
                        "to the trace/attribution report")


# ======================================================================
# RPL007 — persist-protocol conformance
# ======================================================================
class PersistProtocolRule(ProjectRule):
    """Every scheme's declared persist-ordering obligations, proven on
    all static paths (the engine lives in
    :mod:`repro.analysis.protocol`)."""

    name = "persist-protocol"
    paths = ("secure/",)

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        mods = self.by_relpath(modules)
        for finding in check_protocols(index):
            if not self.applies(finding.relpath):
                continue
            yield self.violation_at(mods, finding.relpath, finding.line,
                                    finding.column, finding.message)


# ======================================================================
# RPL008 — exception-unsafe cycle attribution
# ======================================================================
class ExceptionUnsafeAttributionRule(ProjectRule):
    """A raising statement between an AttributionLedger charge and the
    obs emit it funds (engine in :mod:`repro.analysis.protocol`)."""

    name = "exception-unsafe-attribution"
    paths = ("sim/",)

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        mods = self.by_relpath(modules)
        for finding in check_attribution_escape(index, self.paths):
            yield self.violation_at(mods, finding.relpath, finding.line,
                                    finding.column, finding.message)


# ======================================================================
# RPL009 — no per-access allocation on the hot path
# ======================================================================
class HotPathAllocationRule(LintRule):
    """Container/bytes construction inside a declared hot-path method.

    The methods in :data:`HOT_FUNCTIONS` run once or more per simulated
    memory access; an allocation there is multiplied by the whole
    workload (docs/performance.md).  Cold branches that legitimately
    allocate (overflow handling re-encrypts 64 lines anyway) carry an
    inline ``# reprolint: disable=hot-path-allocation`` next to the
    justified line, so any *new* allocation still surfaces."""

    name = "hot-path-allocation"
    paths = ("secure/",)

    #: The per-access call tree: the write/read entry points and the
    #: fetch / bump / persist helpers they reach on every access.  A
    #: declarative list (not call-graph discovery) so the rule's scope
    #: is reviewable in one place and stable under refactors.
    HOT_FUNCTIONS = frozenset({
        "write_data", "read_data", "fetch_node", "_fetch_chain",
        "_parent_counter_chain", "_bump_leaf", "_bump_parent",
        "_update_parent_counter", "_on_leaf_persist", "_flush_node",
        "_persist_node", "_mark_dirty", "_install",
    })

    _ALLOC_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    @staticmethod
    def _is_bytes(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) \
            and isinstance(node.value, bytes)

    def _describe(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.List):
            return "list display"
        if isinstance(node, ast.Dict):
            return "dict display"
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return "comprehension"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in self._ALLOC_CALLS:
                return f"{node.func.id}() call"
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" \
                    and self._is_bytes(node.func.value):
                return "bytes join"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add) \
                and (self._is_bytes(node.left)
                     or self._is_bytes(node.right)):
            return "bytes concatenation"
        return None

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for func in ast.walk(mod.tree):
            if not isinstance(func,
                              (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    or func.name not in self.HOT_FUNCTIONS:
                continue
            for node in ast.walk(func):
                what = self._describe(node)
                if what is not None:
                    yield self.violation(
                        mod, node,
                        f"{what} in hot-path method '{func.name}' "
                        "allocates on every access — hoist to "
                        "__init__, reuse a preallocated buffer, or "
                        "memoize by content")


# ======================================================================
# RPL015 — vectorized epoch kernels stay vectorized
# ======================================================================
class ScalarPathInEpochKernelRule(LintRule):
    """Per-element Python iteration inside a declared epoch kernel.

    The functions named in :data:`repro.secure.vector.HOT_KERNELS` are
    the batched engine's whole-array passes; the digest oracle proves
    their *behaviour* but is blind to a kernel quietly degrading into a
    per-line loop.  Like RPL009, the scope is a declarative list owned
    by the kernel module itself, so adding a kernel to ``HOT_KERNELS``
    opts it into the check in the same edit that declares it hot."""

    name = "scalar-path-in-epoch-kernel"
    paths = ("secure/vector.py",)

    def _describe(self, node: ast.AST) -> str | None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return "for loop"
        if isinstance(node, ast.While):
            return "while loop"
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return "comprehension"
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get":
            return ".get() lookup"
        return None

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        from repro.secure.vector import HOT_KERNELS
        hot = frozenset(HOT_KERNELS)
        for func in ast.walk(mod.tree):
            if not isinstance(func,
                              (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    or func.name not in hot:
                continue
            for node in ast.walk(func):
                what = self._describe(node)
                if what is not None:
                    yield self.violation(
                        mod, node,
                        f"{what} in vectorized kernel '{func.name}' "
                        "runs per element — keep HOT_KERNELS whole-"
                        "array numpy passes, or move the per-row "
                        "residue into a batch_* boundary helper "
                        "outside the hot list")


# ======================================================================
# RPL010 — every metadata persist path is an explorer event seam
# ======================================================================
class UnexploredPersistBoundaryRule(LintRule):
    """A scheme persisting metadata where the crash-state explorer
    cannot see it (docs/crash-exploration.md).

    Two escapes exist: ``poke_line`` (the uncounted media path — legal
    for recovery code, which runs *after* a crash, but a runtime persist
    routed through it never reaches the recorder's ``write_line`` seam)
    and a ``RootRegister`` constructed under a name missing from
    :data:`repro.analysis.explorer.seams.EXPLORED_ROOT_REGISTERS`
    (durable register state the explorer would neither snapshot nor
    replay).  ``secure/`` holds no recovery code — the recovery walk
    lives in ``crash/`` — so every hit here is runtime persist logic."""

    name = "unexplored-persist-boundary"
    paths = ("secure/",)

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "poke_line":
                yield self.violation(
                    mod, node,
                    "poke_line bypasses the explorer's write_line seam; "
                    "persist through the WPQ/write_line path or move "
                    "this to the recovery walk in crash/")
            elif isinstance(node.func, ast.Name) \
                    and node.func.id == "RootRegister" \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str) \
                    and node.args[0].value not in EXPLORED_ROOT_REGISTERS:
                yield self.violation(
                    mod, node,
                    f"root register {node.args[0].value!r} is not an "
                    "explorer seam; add it to repro.analysis.explorer."
                    "seams.EXPLORED_ROOT_REGISTERS so crash exploration "
                    "snapshots and replays it")


# ======================================================================
# RPL011 — report bundles are pure functions of (campaign, seed)
# ======================================================================
class NondeterministicReportRule(LintRule):
    """Wall-clock or unseeded randomness inside the report pipeline.

    The golden-bundle guarantee (docs/figures.md) is checked in CI by
    rendering the same campaign twice and diffing sha256 per file, so
    any entropy source in ``repro.viz`` that is not the explicit report
    seed breaks a release gate.  The only sanctioned RNG shape is
    ``random.Random(seed)`` / ``Random(seed)`` with an argument; module-
    level ``random.*`` calls share interpreter-global state and argless
    constructors seed from the OS."""

    name = "nondeterministic-report"
    paths = ("viz/",)

    #: datetime attribute chains that read the wall clock.
    _WALL_CLOCK = {"datetime.now", "datetime.utcnow", "date.today",
                   "datetime.datetime.now", "datetime.datetime.utcnow",
                   "datetime.date.today"}

    @staticmethod
    def _dotted(node: ast.AST) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = self._dotted(node.func)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            if head == "random":
                if rest == "Random" and (node.args or node.keywords):
                    continue    # the sanctioned seeded shape
                yield self.violation(
                    mod, node,
                    f"{dotted}() draws from interpreter-global or OS-"
                    "seeded randomness; reports must derive every "
                    "random draw from random.Random(report_seed)")
            elif dotted == "Random" and not (node.args or node.keywords):
                yield self.violation(
                    mod, node,
                    "Random() with no seed argument seeds from the OS; "
                    "pass the report seed explicitly")
            elif head == "time" and rest:
                yield self.violation(
                    mod, node,
                    f"{dotted}() reads the wall clock; bundle bytes "
                    "must not depend on when the report runs — derive "
                    "labels from the campaign cache instead")
            elif dotted in self._WALL_CLOCK:
                yield self.violation(
                    mod, node,
                    f"{dotted}() stamps wall-clock time into the "
                    "report; bundles are compared byte-for-byte across "
                    "runs, so timestamps belong in the campaign cache, "
                    "not the bundle")


# ======================================================================
# RPL012 — await-atomicity (engine in repro.analysis.atomicity)
# ======================================================================
class AwaitAtomicityRule(ProjectRule):
    """A ``self.*`` attribute read on one side of an await and written
    back on the other without a covering asyncio lock: another task can
    run at the await and the write clobbers its update.  Locksets are
    lexical ``async with self._lock:`` regions and transfer through
    exact call edges — a helper's reads/writes count at the call site,
    under the caller's lockset (:mod:`repro.analysis.atomicity`)."""

    name = "await-atomicity"
    exclude = ("analysis/",)

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        mods = self.by_relpath(modules)
        scope = frozenset(r for r in mods if self.applies(r))
        for finding in check_await_atomicity(index, scope):
            yield self.violation_at(mods, finding.relpath, finding.line,
                                    finding.column, finding.message)


# ======================================================================
# RPL014 — blocking calls in async code (engine in atomicity.py)
# ======================================================================
class BlockingCallInAsyncRule(ProjectRule):
    """Synchronous blocking work — ``time.sleep``, subprocess, sqlite
    operations, sync file IO, the process-supervising repro helpers —
    reachable inside an ``async def`` through exact call edges stalls
    every task on the event loop.  Offloaded work
    (``asyncio.to_thread`` / ``run_in_executor``) passes the callable
    by reference, creates no call edge, and is accepted."""

    name = "blocking-call-in-async"
    exclude = ("analysis/",)

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        mods = self.by_relpath(modules)
        scope = frozenset(r for r in mods if self.applies(r))
        for finding in check_blocking_calls(index, scope):
            yield self.violation_at(mods, finding.relpath, finding.line,
                                    finding.column, finding.message)


# ======================================================================
# RPL013 — torn final-path file writes
# ======================================================================
class TornFileWriteRule(ProjectRule):
    """A write that lands on a final path directly (``open(p, "w")``,
    ``Path.write_text``, ``json.dump``, a sqlite database created
    without WAL journaling) can be torn by a crash mid-write.  The
    sanctioned discipline is stage-to-temp -> fsync -> ``os.replace``
    (:mod:`repro.util.atomic`); a write is accepted when its function
    participates in that discipline itself (it calls ``os.replace`` or
    targets a ``tempfile``-staged name) or — via the call graph — when
    every exact caller of the staging helper performs the
    ``os.replace``."""

    name = "torn-file-write"
    paths = ("campaign/", "serve/", "viz/", "perf/")

    _STAGING_CTORS = ("tempfile.mkstemp", "tempfile.NamedTemporaryFile",
                      "tempfile.mkdtemp", "tempfile.TemporaryDirectory")

    def check_project(self, modules: list[ParsedModule],
                      index: ProjectIndex) -> Iterator[Violation]:
        mods = self.by_relpath(modules)
        self._index = index
        self._has_replace_memo: dict[str, bool] = {}
        for fn in index.functions.values():
            if fn.relpath not in mods or not self.applies(fn.relpath):
                continue
            yield from self._check_function(fn, mods)

    # -- per-function facts ---------------------------------------------
    def _leaf_nodes(self, fn: FunctionInfo) -> Iterator[ast.AST]:
        for _, _, stmt in self._index.cfg(fn).nodes():
            yield from ast.walk(stmt)

    def _has_replace(self, fn: FunctionInfo) -> bool:
        cached = self._has_replace_memo.get(fn.qualname)
        if cached is None:
            cached = any(
                isinstance(node, ast.Call)
                and _dotted(node.func) == "os.replace"
                for node in self._leaf_nodes(fn))
            self._has_replace_memo[fn.qualname] = cached
        return cached

    def _callers_all_replace(self, fn: FunctionInfo) -> bool:
        """Call-graph acceptance: the function is a staging helper whose
        every exact caller completes the rename."""
        callers = self._index.callers_of(fn)
        return bool(callers) and all(
            self._has_replace(caller) for caller, _ in callers)

    @staticmethod
    def _staged_names(fn: FunctionInfo) -> set[str]:
        staged: set[str] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            dotted = _dotted(value.func) if isinstance(value, ast.Call) \
                else None
            if dotted not in TornFileWriteRule._STAGING_CTORS:
                continue
            for target in node.targets:
                elts = target.elts if isinstance(target, ast.Tuple) \
                    else [target]
                staged.update(e.id for e in elts
                              if isinstance(e, ast.Name))
        return staged

    @staticmethod
    def _handle_names(fn: FunctionInfo) -> set[str]:
        """Locals bound to file handles opened in this function — a
        ``json.dump`` into one is judged by where the *open* points."""
        handles: set[str] = set()

        def opens_file(value: ast.expr) -> bool:
            return (isinstance(value, ast.Call)
                    and (_dotted(value.func) in ("os.fdopen",)
                         or (isinstance(value.func, ast.Name)
                             and value.func.id == "open")
                         or (isinstance(value.func, ast.Attribute)
                             and value.func.attr == "open")))

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and opens_file(node.value):
                handles.update(t.id for t in node.targets
                               if isinstance(t, ast.Name))
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if opens_file(item.context_expr) and \
                            isinstance(item.optional_vars, ast.Name):
                        handles.add(item.optional_vars.id)
        return handles

    @staticmethod
    def _write_mode(call: ast.Call) -> bool:
        mode: ast.expr | None = call.args[1] if len(call.args) >= 2 \
            else None
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if isinstance(mode, ast.Constant) and \
                isinstance(mode.value, str):
            return any(c in mode.value for c in "wax+")
        return False  # no/unknown mode: open() defaults to read

    @staticmethod
    def _root_name(expr: ast.expr) -> str:
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else ""

    # -- the check -------------------------------------------------------
    def _check_function(self, fn: FunctionInfo,
                        mods: dict[str, ParsedModule]
                        ) -> Iterator[Violation]:
        staged = self._staged_names(fn)
        handles = self._handle_names(fn)
        atomic = self._has_replace(fn) or self._callers_all_replace(fn)
        wal_ok = any(
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and "journal_mode" in node.value
            for node in self._leaf_nodes(fn))

        def flag(call: ast.Call, desc: str) -> Violation:
            return self.violation_at(
                mods, fn.relpath, call.lineno, call.col_offset + 1,
                f"{desc} writes the final path directly — a crash "
                "mid-write leaves a torn file; stage to a temp file, "
                "fsync, then os.replace() (repro.util.atomic), or "
                "route the write through an atomic-write helper")

        for node in self._leaf_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = _dotted(func)
            if dotted == "sqlite3.connect":
                if not wal_ok:
                    yield self.violation_at(
                        mods, fn.relpath, node.lineno,
                        node.col_offset + 1,
                        "sqlite database opened without WAL "
                        "journaling in this function — a crash "
                        "mid-transaction can corrupt the file; "
                        "execute PRAGMA journal_mode=WAL right after "
                        "sqlite3.connect()")
                continue
            if atomic:
                continue
            if isinstance(func, ast.Name) and func.id == "open" and \
                    self._write_mode(node):
                target = node.args[0] if node.args else None
                if isinstance(target, ast.Name) and target.id in staged:
                    continue
                yield flag(node, "open(..., 'w')")
            elif isinstance(func, ast.Attribute) and \
                    func.attr == "open" and self._write_mode(node):
                if self._root_name(func.value) in staged:
                    continue
                yield flag(node, f"'{_dotted(func) or 'open'}(...)'")
            elif isinstance(func, ast.Attribute) and \
                    func.attr in ("write_text", "write_bytes"):
                if self._root_name(func.value) in staged:
                    continue
                yield flag(node, f"'.{func.attr}()'")
            elif dotted == "json.dump":
                handle = node.args[1] if len(node.args) >= 2 else None
                if isinstance(handle, ast.Name) and \
                        handle.id in (handles | staged):
                    continue  # judged at the open() it came from
                yield flag(node, "json.dump(...)")


_FLAT_RULE_CLASSES: tuple[type[LintRule], ...] = (
    UncheckedVerifyRule,
    FloatCycleArithRule,
    BareAssertRule,
    StatCounterDisciplineRule,
    ObsUnattributedCyclesRule,
    HotPathAllocationRule,
    ScalarPathInEpochKernelRule,
    UnexploredPersistBoundaryRule,
    NondeterministicReportRule,
)

_PROJECT_RULE_CLASSES: tuple[type[ProjectRule], ...] = (
    NvmDirectStoreRule,
    UncheckedVerifyProjectRule,
    PersistProtocolRule,
    ExceptionUnsafeAttributionRule,
    AwaitAtomicityRule,
    TornFileWriteRule,
    BlockingCallInAsyncRule,
)

# Every registered RuleInfo must have an implementation and vice versa
# (RPL002 deliberately has both a flat and a project half).
_IMPLEMENTED = {cls.name for cls in _FLAT_RULE_CLASSES} | \
    {cls.name for cls in _PROJECT_RULE_CLASSES}
if _IMPLEMENTED != {r.name for r in ALL_RULES}:
    raise RuntimeError("lint rule registry out of sync with rules.py")


def _run_flat_rules(mod: ParsedModule,
                    wanted: set[str] | None) -> list[Violation]:
    violations: list[Violation] = []
    for cls in _FLAT_RULE_CLASSES:
        if wanted is not None and cls.name not in wanted:
            continue
        rule = cls()
        if not rule.applies(mod.relpath):
            continue
        for violation in rule.check(mod):
            if not mod.suppressed(violation.line, rule.name):
                violations.append(violation)
    return violations


def _flat_worker(job: tuple[str, str, tuple[str, ...] | None]
                 ) -> list[dict]:
    """Process-pool entry: lint one file with the flat rules."""
    path_str, relpath, selected = job
    wanted = set(selected) if selected is not None else None
    mod = ParsedModule(Path(path_str), relpath)
    return [v.as_dict() for v in _run_flat_rules(mod, wanted)]


def _violation_from_dict(data: dict) -> Violation:
    return Violation(rule=get_rule(data["rule"]), path=data["path"],
                     line=data["line"], column=data["column"],
                     message=data["message"], snippet=data["snippet"])


class Linter:
    """Walk a tree of Python files and run every (selected) rule.

    ``cache`` (an :class:`~repro.analysis.cache.AnalysisCache`) makes
    repeat runs incremental; it is bypassed while a rule selection is
    active.  ``jobs > 1`` fans the flat per-file phase out over a
    process pool; the project phase is one shared pass either way.
    """

    def __init__(self, root: Path,
                 select: Iterable[str] | None = None,
                 cache: AnalysisCache | None = None,
                 jobs: int = 1) -> None:
        self.root = Path(root)
        self._wanted: set[str] | None = None if select is None else {
            get_rule(token).name for token in select}
        self.cache = cache if select is None else None
        self.jobs = max(1, int(jobs))
        self.cache_stats: CacheStats | None = None

    def iter_files(self) -> Iterator[Path]:
        if self.root.is_file():
            yield self.root
            return
        for path in sorted(self.root.rglob("*.py")):
            if "egg-info" in path.parts or "__pycache__" in path.parts:
                continue
            yield path

    def relpath_of(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.name

    # ------------------------------------------------------------------
    def _project_rules(self) -> list[ProjectRule]:
        return [cls() for cls in _PROJECT_RULE_CLASSES
                if self._wanted is None or cls.name in self._wanted]

    def run(self, files: Iterable[Path] | None = None) -> list[Violation]:
        paths = [Path(p) for p in
                 (files if files is not None else self.iter_files())]
        entries: list[tuple[Path, str, bytes, str]] = []
        for path in paths:
            data = path.read_bytes()
            entries.append((path, self.relpath_of(path), data,
                            file_sha(data)))
        cache = self.cache
        stats = cache.stats if cache is not None else CacheStats()
        stats.files_total = len(entries)

        mods: dict[str, ParsedModule] = {}

        def parse(path: Path, relpath: str, data: bytes) -> ParsedModule:
            mod = ParsedModule(path, relpath, source=data.decode())
            mods[mod.relpath] = mod
            return mod

        # -- flat phase -------------------------------------------------
        flat: list[Violation] = []
        misses: list[tuple[Path, str, bytes, str]] = []
        for path, relpath, data, sha in entries:
            hit = cache.get_file(relpath, sha) if cache else None
            if hit is not None:
                stats.files_hit += 1
                flat.extend(hit)
            else:
                misses.append((path, relpath, data, sha))
        if self.jobs > 1 and len(misses) > 1:
            from concurrent.futures import ProcessPoolExecutor
            jobs = [(str(path), relpath,
                     tuple(self._wanted) if self._wanted else None)
                    for path, relpath, _, _ in misses]
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                results = list(pool.map(_flat_worker, jobs))
            for (path, relpath, data, sha), dicts in zip(misses, results):
                violations = [_violation_from_dict(d) for d in dicts]
                flat.extend(violations)
                if cache:
                    cache.put_file(relpath, sha, violations)
        else:
            for path, relpath, data, sha in misses:
                mod = parse(path, relpath, data)
                violations = _run_flat_rules(mod, self._wanted)
                flat.extend(violations)
                if cache:
                    cache.put_file(relpath, sha, violations)

        # -- project phase ----------------------------------------------
        project: list[Violation] = []
        project_rules = self._project_rules()
        if project_rules and entries:
            digest = project_digest([(relpath, sha)
                                     for _, relpath, _, sha in entries])
            cached = cache.get_project(digest) if cache else None
            if cached is not None:
                stats.project_hit = True
                project = cached
            else:
                stats.project_ran = True
                ordered: list[ParsedModule] = []
                for path, relpath, data, _ in entries:
                    mod = mods.get(relpath)
                    if mod is None or mod.path != path:
                        mod = parse(path, relpath, data)
                    ordered.append(mod)
                index = ProjectIndex([(m.relpath, m.tree)
                                      for m in ordered])
                by_pin = {m.relpath: m for m in ordered}
                for rule in project_rules:
                    for violation in rule.check_project(ordered, index):
                        mod = by_pin.get(violation.path)
                        if mod is not None and \
                                mod.suppressed(violation.line, rule.name):
                            continue
                        project.append(violation)
                if cache:
                    cache.put_project(digest, project)

        if cache:
            cache.prune({relpath for _, relpath, _, _ in entries})
            cache.save()
        self.cache_stats = stats if cache else None

        violations = flat + project
        violations.sort(key=lambda v: (v.path, v.line, v.rule.id))
        return violations
