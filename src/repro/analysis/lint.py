"""reprolint — the AST lint enforcing simulator-domain invariants.

Each check is a :class:`LintRule` subclass scoped to the package paths
where its invariant applies.  Rules are deliberately *semantic*, not
stylistic: every one of them protects a property the paper's evaluation
depends on (see the rationales in :mod:`repro.analysis.rules`).

Suppression: append ``# reprolint: disable=<rule-name>[,<rule-name>]``
to the offending line (``disable=all`` silences every rule for that
line).  Fixture files under test control can also pin the path used for
rule scoping with a first-line ``# reprolint-fixture-path: <relpath>``
comment, so known-bad snippets exercise path-scoped rules without
living inside the package.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.analysis.rules import ALL_RULES, RuleInfo, Violation, get_rule

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([\w\-, ]+)")
_FIXTURE_PATH_RE = re.compile(r"#\s*reprolint-fixture-path:\s*(\S+)")


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, path: Path, relpath: str) -> None:
        self.path = path
        self.source = path.read_text()
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.relpath = relpath
        # Fixture files may pin the path rules see (test machinery).
        for line in self.lines[:3]:
            match = _FIXTURE_PATH_RE.search(line)
            if match:
                self.relpath = match.group(1)
                break
        self.suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                names = {token.strip()
                         for token in match.group(1).split(",")
                         if token.strip()}
                self.suppressions[lineno] = names

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule_name: str) -> bool:
        names = self.suppressions.get(lineno, ())
        return rule_name in names or "all" in names


def _attr_name(node: ast.expr) -> str:
    """Name of an assignment target: ``x`` or ``obj.x`` -> ``x``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted form of an attribute chain for messages."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class LintRule:
    """Base class: path scoping + the shared violation constructor."""

    #: Path prefixes (relative to the scan root) the rule applies to.
    #: An empty tuple means everywhere.
    paths: tuple[str, ...] = ()
    #: Path prefixes exempt from the rule.
    exclude: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.info: RuleInfo = get_rule(self.name)

    name = ""  # overridden

    def applies(self, relpath: str) -> bool:
        if any(relpath.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.paths:
            return True
        return any(relpath.startswith(prefix) for prefix in self.paths)

    def violation(self, mod: ParsedModule, node: ast.AST,
                  message: str) -> Violation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(rule=self.info, path=mod.relpath, line=lineno,
                         column=col + 1, message=message,
                         snippet=mod.snippet(lineno))

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        raise NotImplementedError


# ======================================================================
# RPL001 — every persist attributable to ADR semantics
# ======================================================================
class NvmDirectStoreRule(LintRule):
    """``write_line``/``poke_line`` calls outside the device, the typed
    store, the crash machinery and the CME re-encryption burst must be
    preceded — in the same function — by a WPQ ``enqueue``, so every
    persist is attributable to ADR semantics."""

    name = "nvm-direct-store"
    exclude = ("mem/", "tree/store.py", "crash/", "cme/encryption.py",
               "analysis/")

    _STORE_CALLS = ("write_line", "poke_line")

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        # Attribute every call to its innermost enclosing function (or
        # the module scope) so "preceded by an enqueue" is judged per
        # scope, in statement order.
        scopes: dict[int, dict[str, list[ast.Call]]] = {}

        def visit(node: ast.AST, scope_id: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_scope = scope_id
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    child_scope = id(child)
                if isinstance(child, ast.Call) and \
                        isinstance(child.func, ast.Attribute):
                    attr = child.func.attr
                    bucket = scopes.setdefault(
                        scope_id, {"enqueue": [], "store": []})
                    if attr == "enqueue":
                        bucket["enqueue"].append(child)
                    elif attr in self._STORE_CALLS:
                        bucket["store"].append(child)
                visit(child, child_scope)

        visit(mod.tree, id(mod.tree))
        for bucket in scopes.values():
            enqueue_lines = [c.lineno for c in bucket["enqueue"]]
            first_enqueue = min(enqueue_lines) if enqueue_lines else None
            for call in bucket["store"]:
                if first_enqueue is not None and \
                        call.lineno >= first_enqueue:
                    continue
                yield self.violation(
                    mod, call,
                    f"direct NVM store '{_dotted(call.func)}' with no "
                    "preceding wpq.enqueue in this function — the "
                    "persist is invisible to the ADR crash model")


# ======================================================================
# RPL002 — no dropped verification results
# ======================================================================
class UncheckedVerifyRule(LintRule):
    """A ``verify``/``matches`` call whose boolean result is discarded
    is a verification that can never fail."""

    name = "unchecked-verify"
    paths = ("secure/", "tree/", "crash/", "cme/")

    _VERIFY_CALLS = ("verify", "matches")

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Expr):
                continue
            value = node.value
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Attribute) and \
                    value.func.attr in self._VERIFY_CALLS:
                yield self.violation(
                    mod, node,
                    f"result of '{_dotted(value.func)}(...)' is "
                    "discarded — a verification that cannot fail is a "
                    "silent security hole")


# ======================================================================
# RPL003 — integer-only cycle arithmetic
# ======================================================================
class FloatCycleArithRule(LintRule):
    """Assignments to ``*cycle*`` names (and returns from ``*cycle*``
    functions) must not contain true division or float literals unless
    explicitly converted with ``int(...)`` at the top level."""

    name = "float-cycle-arith"
    paths = ("mem/timing.py", "mem/wpq.py", "mem/nvm.py", "sim/")

    @staticmethod
    def _has_float_math(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if isinstance(sub, ast.Constant) and \
                    isinstance(sub.value, float):
                return True
        return False

    @staticmethod
    def _int_converted(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "int")

    def _flag(self, value: ast.expr | None) -> bool:
        return (value is not None
                and not self._int_converted(value)
                and self._has_float_math(value))

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets, value = [node.target], node.value
            if value is not None:
                for target in targets:
                    name = _attr_name(target)
                    if "cycle" in name.lower() and self._flag(value):
                        yield self.violation(
                            mod, node,
                            f"float arithmetic assigned to cycle "
                            f"counter '{name}' — cycle counts are "
                            "exact integers (use // or wrap in int())")
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and "cycle" in node.name.lower():
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Return) and \
                            self._flag(sub.value):
                        yield self.violation(
                            mod, sub,
                            f"'{node.name}' returns float arithmetic — "
                            "cycle quantities are exact integers")


# ======================================================================
# RPL004 — no assert-based runtime validation
# ======================================================================
class BareAssertRule(LintRule):
    """``assert`` disappears under ``python -O``; library code must
    raise typed :mod:`repro.errors` exceptions instead."""

    name = "bare-assert"
    exclude = ("analysis/",)

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    mod, node,
                    "bare assert in library code is stripped under "
                    "python -O — raise a typed repro.errors exception")


# ======================================================================
# RPL005 — counters registered before increment
# ======================================================================
class StatCounterDisciplineRule(LintRule):
    """Chained ``stats.counter("x").add(...)`` creates-or-fetches the
    counter on the hot path (and silently mints a fresh zero counter on
    a typo); counters must be bound once at construction."""

    name = "stat-counter-discipline"
    exclude = ("util/stats.py",)

    _FACTORY_CALLS = ("counter", "mean", "histogram")

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add"):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Call) and \
                    isinstance(receiver.func, ast.Attribute) and \
                    receiver.func.attr in self._FACTORY_CALLS:
                yield self.violation(
                    mod, node,
                    f"'{_dotted(receiver.func)}(...).add(...)' "
                    "registers the statistic at increment time — bind "
                    "it to an attribute at construction instead")


# ======================================================================
# RPL006 — cycle charges must be observable
# ======================================================================
class ObsUnattributedCyclesRule(LintRule):
    """A scheme method that advances cycle time (``self....charge``,
    ``self....enqueue``, ``self._persist_node``) must also emit a trace
    event through ``self.obs`` so the attribution report can explain
    where those cycles went.

    Scoped to the scheme subclasses: the shared base controller emits
    the per-op breakdown events (``write_op``/``read_op``) itself, so it
    — and non-controller helpers — are exempt.
    """

    name = "obs-unattributed-cycles"
    paths = ("secure/",)
    exclude = ("secure/base.py", "secure/__init__.py", "secure/roots.py")

    _CYCLE_CALLS = ("charge", "enqueue", "_persist_node")

    @staticmethod
    def _rooted_at_self(node: ast.expr) -> bool:
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    def check(self, mod: ParsedModule) -> Iterator[Violation]:
        for cls in ast.walk(mod.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                charges: list[ast.Call] = []
                emits = False
                for node in ast.walk(func):
                    if isinstance(node, ast.Attribute) and \
                            node.attr == "obs":
                        emits = True
                    if isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Attribute) and \
                            node.func.attr in self._CYCLE_CALLS and \
                            self._rooted_at_self(node.func):
                        charges.append(node)
                if charges and not emits:
                    yield self.violation(
                        mod, charges[0],
                        f"'{cls.name}.{func.name}' charges cycles via "
                        f"'{_dotted(charges[0].func)}(...)' but never "
                        "touches self.obs — the cycles are invisible "
                        "to the trace/attribution report")


_RULE_CLASSES: tuple[type[LintRule], ...] = (
    NvmDirectStoreRule,
    UncheckedVerifyRule,
    FloatCycleArithRule,
    BareAssertRule,
    StatCounterDisciplineRule,
    ObsUnattributedCyclesRule,
)

# Every registered RuleInfo must have an implementation and vice versa.
if {cls.name for cls in _RULE_CLASSES} != {r.name for r in ALL_RULES}:
    raise RuntimeError("lint rule registry out of sync with rules.py")


class Linter:
    """Walk a tree of Python files and run every (selected) rule."""

    def __init__(self, root: Path,
                 select: Iterable[str] | None = None) -> None:
        self.root = Path(root)
        wanted = None if select is None else {
            get_rule(token).name for token in select}
        self.rules: list[LintRule] = [
            cls() for cls in _RULE_CLASSES
            if wanted is None or cls.name in wanted]

    def iter_files(self) -> Iterator[Path]:
        if self.root.is_file():
            yield self.root
            return
        for path in sorted(self.root.rglob("*.py")):
            if "egg-info" in path.parts or "__pycache__" in path.parts:
                continue
            yield path

    def relpath_of(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.name

    def run(self, files: Iterable[Path] | None = None) -> list[Violation]:
        violations: list[Violation] = []
        for path in (files if files is not None else self.iter_files()):
            mod = ParsedModule(Path(path), self.relpath_of(Path(path)))
            for rule in self.rules:
                if not rule.applies(mod.relpath):
                    continue
                for violation in rule.check(mod):
                    if not mod.suppressed(violation.line, rule.name):
                        violations.append(violation)
        violations.sort(key=lambda v: (v.path, v.line, v.rule.id))
        return violations
