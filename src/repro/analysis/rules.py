"""Rule metadata and the violation record shared by the lint and the
CLI.

Every rule has a stable short ``name`` (the token used in suppression
comments and the baseline file), an ``id`` for terse grep-able output,
a one-line ``summary`` and a ``rationale`` tying it back to the paper —
rules exist to protect a modelling invariant, not a style preference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class RuleInfo:
    """Descriptive metadata for one lint rule."""

    id: str
    name: str
    summary: str
    rationale: str


#: The registry, in report order.
ALL_RULES: tuple[RuleInfo, ...] = (
    RuleInfo(
        id="RPL001",
        name="nvm-direct-store",
        summary="NVM store mutation not attributable to the WPQ / "
                "crash-injection APIs",
        rationale="The WPQ is the ADR persistence domain (Table II): a "
                  "write_line call not covered by a wpq.enqueue on "
                  "every static path — in the same function or in "
                  "every caller leading to it — is a persist the crash "
                  "model cannot see, so crash injection would silently "
                  "disagree with the timing model.  (poke_line is the "
                  "deliberate crash-injection backdoor and is exempt, "
                  "matching the runtime sanitizer.)",
    ),
    RuleInfo(
        id="RPL002",
        name="unchecked-verify",
        summary="HMAC/verify result discarded",
        rationale="A dropped verification result is a silent security "
                  "hole: the simulator would model a controller that "
                  "computes MACs but never acts on them, voiding the "
                  "attack-detection claims of Table I.",
    ),
    RuleInfo(
        id="RPL003",
        name="float-cycle-arith",
        summary="floating-point arithmetic on a cycle counter",
        rationale="Cycle counts are exact integers; float rounding in "
                  "the WPQ drain clock or the CPU model makes latency "
                  "comparisons between schemes (Fig 9/10) "
                  "non-reproducible across platforms.",
    ),
    RuleInfo(
        id="RPL004",
        name="bare-assert",
        summary="bare assert used for runtime validation in library "
                "code",
        rationale="``python -O`` strips asserts: a verification or "
                  "type check expressed as assert vanishes in "
                  "optimised runs, turning a detected integrity "
                  "failure into silent acceptance.  Raise a typed "
                  "repro.errors exception instead.",
    ),
    RuleInfo(
        id="RPL005",
        name="stat-counter-discipline",
        summary="statistics counter created at increment time",
        rationale="StatGroup.counter() creates-on-fetch: a chained "
                  "counter(...).add(...) silently mints a new counter "
                  "on typo, and per-event registration costs the hot "
                  "path.  Bind counters once at construction.",
    ),
    RuleInfo(
        id="RPL006",
        name="obs-unattributed-cycles",
        summary="scheme method advances cycle time without emitting an "
                "observability event",
        rationale="The repro.obs attribution invariant (per-component "
                  "cycles summing to total cycles) only holds when "
                  "every scheme method that charges latency — hash "
                  "bursts, WPQ enqueues, node persists — also emits a "
                  "trace event naming where the cycles went.  A silent "
                  "charge shows up as an unexplained gap in the "
                  "Perfetto timeline and the flame report.",
    ),
    RuleInfo(
        id="RPL007",
        name="persist-protocol",
        summary="scheme violates its declared persist-ordering "
                "protocol on some static path",
        rationale="Each secure-memory scheme declares ordering "
                  "obligations derived from the paper's crash-"
                  "consistency argument — SCUE must update the "
                  "recovery root before the shortcut leaf persist "
                  "(§IV-A2), the eager family must persist leaves "
                  "before tree ancestors (Fig 6a/6b).  The checker "
                  "proves the obligation on every static path through "
                  "the anchor method and its helpers; a single "
                  "uncovered branch is a crash window the runtime "
                  "sanitizer can only catch if a workload happens to "
                  "drive that branch.",
    ),
    RuleInfo(
        id="RPL008",
        name="exception-unsafe-attribution",
        summary="exception path can escape between a ledger charge "
                "and its observability emit",
        rationale="The attribution invariant (charged cycles == "
                  "emitted cycles) must hold even when an access "
                  "raises: a call that may raise between an "
                  "AttributionLedger charge and the obs emit that "
                  "funds it leaves the ledger ahead of the trace, so "
                  "the flame report no longer sums to total cycles.  "
                  "Wrap the charge-emit window in try/finally or emit "
                  "before the raising call.",
    ),
    RuleInfo(
        id="RPL009",
        name="hot-path-allocation",
        summary="container or bytes allocation inside a per-access "
                "hot-path method",
        rationale="The declared hot-path methods run once or more per "
                  "simulated memory access, so a list/dict display, a "
                  "list()/dict() call or a bytes concatenation there "
                  "is an allocation multiplied by the whole workload — "
                  "exactly what dominated the profile before the "
                  "hot-path overhaul (docs/performance.md).  Build "
                  "containers at construction time, reuse "
                  "preallocated buffers, or memoize by content; "
                  "genuinely cold branches (overflow handling) belong "
                  "in the baseline with a justification.",
    ),
    RuleInfo(
        id="RPL010",
        name="unexplored-persist-boundary",
        summary="scheme persists metadata outside the crash explorer's "
                "registered event seams",
        rationale="The crash-state model checker "
                  "(docs/crash-exploration.md) can only enumerate "
                  "crash cuts over persists it observes: wpq.enqueue, "
                  "nvm.write_line, _flush_node brackets and the "
                  "registered root registers.  A scheme that writes "
                  "metadata through poke_line (the uncounted path) or "
                  "holds root state in an unregistered RootRegister "
                  "creates durable state the explorer never replays, "
                  "so its crash space is silently under-verified.  "
                  "Route runtime persists through write_line/the WPQ, "
                  "or register the new seam in "
                  "repro.analysis.explorer.seams.",
    ),
    RuleInfo(
        id="RPL011",
        name="nondeterministic-report",
        summary="report pipeline code draws on wall-clock time or "
                "unseeded randomness",
        rationale="Every byte of a report bundle must be a pure "
                  "function of the campaign cache and the report seed "
                  "(docs/figures.md): two runs over the same campaign "
                  "directory are compared sha256-per-file in CI, so a "
                  "time.time()/datetime.now() stamp or a module-level "
                  "random call (anything but an explicitly seeded "
                  "random.Random(seed)) silently breaks the golden-"
                  "bundle guarantee.",
    ),
    RuleInfo(
        id="RPL012",
        name="await-atomicity",
        summary="shared state read and written back across an await "
                "without a covering lock",
        rationale="The serve layer's correctness argument is the same "
                  "shape as the paper's: invariants live on ordering "
                  "discipline.  Scheduler/EventBus/quota/store "
                  "bookkeeping is loop-synchronous — atomic only "
                  "*between* awaits.  A self.* attribute read before "
                  "an interference point and written back after it "
                  "lets another task interleave at the await and have "
                  "its update clobbered (lost quota charges, double-"
                  "scheduled cells).  Hold one asyncio.Lock across the "
                  "read-modify-write or keep it on one side of the "
                  "await.",
    ),
    RuleInfo(
        id="RPL013",
        name="torn-file-write",
        summary="final-path file write outside the write-temp -> fsync "
                "-> os.replace discipline",
        rationale="The repo's crash-consistency claim extends to its "
                  "own artifacts: manifests, cache entries, report "
                  "bundles and discovery files are consumed by "
                  "concurrent readers and must never be observable "
                  "half-written — exactly the torn-root problem of "
                  "§III-B at file granularity.  Every write to a final "
                  "path must stage to a temp file, fsync, and publish "
                  "with an atomic os.replace (repro.util.atomic); "
                  "sqlite files get the equivalent guarantee from WAL "
                  "journaling.",
    ),
    RuleInfo(
        id="RPL014",
        name="blocking-call-in-async",
        summary="blocking call reachable inside an async def without "
                "to_thread/run_in_executor offload",
        rationale="One stalled coroutine stalls every tenant: the "
                  "serve event loop multiplexes all connections, so a "
                  "time.sleep, subprocess wait, sqlite query or "
                  "synchronous file read reachable from an async "
                  "handler freezes streaming, health checks and "
                  "scheduling for its whole duration.  Offload "
                  "blocking work with asyncio.to_thread / "
                  "run_in_executor — the scheduler already does this "
                  "for run_cell and store.put.",
    ),
    RuleInfo(
        id="RPL015",
        name="scalar-path-in-epoch-kernel",
        summary="per-element Python loop or dict lookup inside a "
                "declared vectorized epoch kernel",
        rationale="The epoch engine's speedup rests on the kernels in "
                  "repro.secure.vector.HOT_KERNELS staying whole-array "
                  "numpy passes: one window, one call.  A for/while "
                  "loop, a comprehension, or a dict .get() inside one "
                  "re-introduces the per-line Python interpreter cost "
                  "the batched engine exists to amortize — silently, "
                  "because the digest oracle only checks behaviour, "
                  "never speed.  Per-row hash loops are the "
                  "irreducible residue (hashlib has no batch API) and "
                  "live in the batch_* boundary helpers, which are "
                  "deliberately outside the hot list.",
    ),
)

_BY_NAME = {rule.name: rule for rule in ALL_RULES}
_BY_ID = {rule.id: rule for rule in ALL_RULES}


def get_rule(name_or_id: str) -> RuleInfo:
    """Look a rule up by its short name or its RPLnnn id."""
    rule = _BY_NAME.get(name_or_id) or _BY_ID.get(name_or_id)
    if rule is None:
        raise ConfigError(
            f"unknown lint rule {name_or_id!r}; known rules: "
            f"{', '.join(sorted(_BY_NAME))}")
    return rule


@dataclass(frozen=True)
class Violation:
    """One lint finding, locatable and stable enough to baseline."""

    rule: RuleInfo
    path: str          # posix-style path relative to the scan root
    line: int
    column: int
    message: str
    snippet: str       # the stripped offending source line

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching:
        a violation keeps its fingerprint when unrelated edits shift it
        up or down the file."""
        digest = hashlib.sha256(
            f"{self.rule.name}|{self.path}|{self.snippet}".encode())
        return digest.hexdigest()[:12]

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule.id} [{self.rule.name}] {self.message}")

    def as_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "id": self.rule.id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
