"""Rule metadata and the violation record shared by the lint and the
CLI.

Every rule has a stable short ``name`` (the token used in suppression
comments and the baseline file), an ``id`` for terse grep-able output,
a one-line ``summary`` and a ``rationale`` tying it back to the paper —
rules exist to protect a modelling invariant, not a style preference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class RuleInfo:
    """Descriptive metadata for one lint rule."""

    id: str
    name: str
    summary: str
    rationale: str


#: The registry, in report order.
ALL_RULES: tuple[RuleInfo, ...] = (
    RuleInfo(
        id="RPL001",
        name="nvm-direct-store",
        summary="NVM store mutation not attributable to the WPQ / "
                "crash-injection APIs",
        rationale="The WPQ is the ADR persistence domain (Table II): a "
                  "write_line/poke_line call with no preceding "
                  "wpq.enqueue in the same function is a persist the "
                  "crash model cannot see, so crash injection would "
                  "silently disagree with the timing model.",
    ),
    RuleInfo(
        id="RPL002",
        name="unchecked-verify",
        summary="HMAC/verify result discarded",
        rationale="A dropped verification result is a silent security "
                  "hole: the simulator would model a controller that "
                  "computes MACs but never acts on them, voiding the "
                  "attack-detection claims of Table I.",
    ),
    RuleInfo(
        id="RPL003",
        name="float-cycle-arith",
        summary="floating-point arithmetic on a cycle counter",
        rationale="Cycle counts are exact integers; float rounding in "
                  "the WPQ drain clock or the CPU model makes latency "
                  "comparisons between schemes (Fig 9/10) "
                  "non-reproducible across platforms.",
    ),
    RuleInfo(
        id="RPL004",
        name="bare-assert",
        summary="bare assert used for runtime validation in library "
                "code",
        rationale="``python -O`` strips asserts: a verification or "
                  "type check expressed as assert vanishes in "
                  "optimised runs, turning a detected integrity "
                  "failure into silent acceptance.  Raise a typed "
                  "repro.errors exception instead.",
    ),
    RuleInfo(
        id="RPL005",
        name="stat-counter-discipline",
        summary="statistics counter created at increment time",
        rationale="StatGroup.counter() creates-on-fetch: a chained "
                  "counter(...).add(...) silently mints a new counter "
                  "on typo, and per-event registration costs the hot "
                  "path.  Bind counters once at construction.",
    ),
    RuleInfo(
        id="RPL006",
        name="obs-unattributed-cycles",
        summary="scheme method advances cycle time without emitting an "
                "observability event",
        rationale="The repro.obs attribution invariant (per-component "
                  "cycles summing to total cycles) only holds when "
                  "every scheme method that charges latency — hash "
                  "bursts, WPQ enqueues, node persists — also emits a "
                  "trace event naming where the cycles went.  A silent "
                  "charge shows up as an unexplained gap in the "
                  "Perfetto timeline and the flame report.",
    ),
)

_BY_NAME = {rule.name: rule for rule in ALL_RULES}
_BY_ID = {rule.id: rule for rule in ALL_RULES}


def get_rule(name_or_id: str) -> RuleInfo:
    """Look a rule up by its short name or its RPLnnn id."""
    rule = _BY_NAME.get(name_or_id) or _BY_ID.get(name_or_id)
    if rule is None:
        raise ConfigError(
            f"unknown lint rule {name_or_id!r}; known rules: "
            f"{', '.join(sorted(_BY_NAME))}")
    return rule


@dataclass(frozen=True)
class Violation:
    """One lint finding, locatable and stable enough to baseline."""

    rule: RuleInfo
    path: str          # posix-style path relative to the scan root
    line: int
    column: int
    message: str
    snippet: str       # the stripped offending source line

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching:
        a violation keeps its fingerprint when unrelated edits shift it
        up or down the file."""
        digest = hashlib.sha256(
            f"{self.rule.name}|{self.path}|{self.snippet}".encode())
        return digest.hexdigest()[:12]

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule.id} [{self.rule.name}] {self.message}")

    def as_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "id": self.rule.id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
