"""BMF-ideal — Bonsai Merkle Forests, ideal case (Freij et al., MICRO'21;
paper §V-A, §VI).

BMF splits one big tree into a forest of small trees whose roots live in a
non-volatile metadata cache (nvMC).  In the *ideal* case the nvMC is
unbounded and every counter block's parent is a persistent root: the tree
effectively ends at level 1, writes update the counter block plus its
always-resident, always-persistent parent, and nothing ever propagates
higher.

That makes BMF-ideal fast (no ancestor traffic at all — it even beats lazy
on metadata accesses by ~8.7%, §V-E) and crash consistent (the roots are
persistent by construction).  The cost is the elephant in §V-F/§VI: the
nvMC must be built from high-speed non-volatile on-chip storage sized
proportionally to the NVM — hundreds of MB for a 16 GB part — which is the
overhead SCUE's two 64 B registers exist to avoid.
"""

from __future__ import annotations

from repro.cme.counters import CounterBlock
from repro.errors import SimulationError
from repro.mem.address import CACHE_LINE_SIZE
from repro.obs import events as ev
from repro.secure.base import (
    RecoveryReport,
    SecureMemoryController,
    expect_node,
)
from repro.tree.node import SITNode
from repro.tree.store import TreeNode


class BMFIdealController(SecureMemoryController):
    """Unbounded-nvMC Bonsai Merkle Forest on SIT leaves."""

    name = "bmf-ideal"
    crash_consistent_root = True

    def __init__(self, config, recorder=None) -> None:
        super().__init__(config, recorder)
        #: The persistent roots: level-1 nodes, keyed by index.  Plain
        #: dict rather than a cache — the ideal nvMC never evicts and
        #: survives crashes.
        self._nvmc: dict[int, SITNode] = {}

    def _persistent_root(self, index: int) -> SITNode:
        node = self._nvmc.get(index)
        if node is None:
            node = SITNode(1, index, arity=self.amap.arity)
            self._nvmc[index] = node
        return node

    # ------------------------------------------------------------------
    # The tree ends at level 1: fetches of level >= 1 hit the nvMC.
    # ------------------------------------------------------------------
    def _fetch_chain(self, level: int, index: int) -> tuple[TreeNode, int, int]:
        if level == 1:
            return self._persistent_root(index), 0, 0
        if level > 1:
            raise SimulationError(
                "BMF-ideal has no tree levels above the persistent roots")
        return super()._fetch_chain(level, index)

    # ------------------------------------------------------------------
    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        root = self._persistent_root(leaf_index // self.amap.arity)
        slot = self.amap.parent_slot(leaf_index)
        root.bump_counter(slot, dummy_delta)
        addr = self.amap.counter_block_addr(leaf_index)
        leaf.seal(self.mac, addr, root.counter(slot))
        hash_latency = self.hash_engine.charge(1)
        wpq_stall = self._persist_node(leaf, cycle) \
            if self.config.leaf_write_through else 0
        if self.obs.enabled:
            self.obs.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT,
                             register="nvmc", leaf=leaf_index)
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, leaf=leaf_index,
                             cycles=hash_latency + wpq_stall)
        return hash_latency + wpq_stall

    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        if not isinstance(node, CounterBlock):
            raise SimulationError(
                "BMF-ideal never caches nodes above the leaf level")
        root = self._persistent_root(node.index // self.amap.arity)
        slot = self.amap.parent_slot(node.index)
        root.bump_counter(slot, 1)
        addr = self.amap.counter_block_addr(node.index)
        node.seal(self.mac, addr, root.counter(slot))
        self.hash_engine.charge(1)
        stall = self._persist_node(node, cycle)
        if self.obs.enabled:
            self.obs.instant(ev.EV_META_FLUSH, ev.TRACK_CTL,
                             scheme=self.name, level=0, index=node.index,
                             cycles=stall)
        return stall

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Verify every persisted counter block against its persistent
        root — no reconstruction needed, the roots never went stale."""
        failures: list[int] = []
        reads = 0
        for index in range(self.amap.num_counter_blocks):
            leaf = self.store.load(0, index, counted=False)
            reads += 1
            expect_node(leaf, CounterBlock, "bmf: recovery scan")
            root = self._persistent_root(index // self.amap.arity)
            addr = self.amap.counter_block_addr(index)
            if not leaf.verify(self.mac, addr,
                               root.counter(self.amap.parent_slot(index))):
                failures.append(index)
        success = not failures
        return RecoveryReport(
            scheme=self.name, success=success, root_matched=success,
            leaf_hmac_failures=failures, metadata_reads=reads,
            recovery_seconds=reads * 100e-9,
            detail="persistent roots in nvMC survived the crash"
            if success else "leaf verification against nvMC roots failed")

    def onchip_overhead_bytes(self) -> int:
        """The unbounded nvMC, sized for the whole NVM: one persistent
        64 B root per 8 counter blocks (§V-F reports the paper's own
        figure alongside this in the benchmark)."""
        roots = self.amap.level_width(1) if self.amap.tree_levels > 1 \
            else 1
        return roots * CACHE_LINE_SIZE
