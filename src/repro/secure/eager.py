"""The eager update scheme (paper §II-D4, Fig 6b).

Every leaf persist propagates counter bumps through the whole branch — in
cache — and schedules the root-register update.  SIT lets all branch HMACs
be recomputed in one parallel hash burst, so the propagation costs one
hash latency plus whatever ancestor fetches miss the metadata cache.

The catch (§III-B): the root update *completes* only after the branch has
been fetched and hashed — the **crash window**.  In-flight updates are
tracked in :attr:`_pending_root` with their completion cycles; a crash
discards whatever has not completed, leaving the non-volatile register
behind the persisted leaves.  Recovery then reconstructs a root the
register has never held and fails, even though nobody attacked anything.
Eager is *architecturally* consistent while running: verification reads
the effective root (register + in-flight deltas).
"""

from __future__ import annotations

from repro.cme.counters import CounterBlock
from repro.crash.recovery import counter_summing_reconstruction
from repro.obs import events as ev
from repro.secure.base import (
    ReadOutcome,
    RecoveryReport,
    SecureMemoryController,
    WriteOutcome,
    expect_node,
)
from repro.tree.node import SITNode
from repro.tree.store import TreeNode


class EagerController(SecureMemoryController):
    """Eager propagation with an explicit crash window."""

    name = "eager"
    crash_consistent_root = False

    def __init__(self, config, recorder=None) -> None:
        super().__init__(config, recorder)
        #: In-flight root updates: [completion_cycle | None, slot, delta].
        #: ``None`` marks an update whose window is scheduled when the
        #: enclosing write completes (the pipeline starts at data
        #: acceptance, so the window extends past the operation's end).
        self._pending_root: list[list] = []
        self._window_extra = 0
        self._window_losses = self.stats.counter("window_lost_updates")

    # ------------------------------------------------------------------
    # Effective root: register + in-flight updates (runtime trust base)
    # ------------------------------------------------------------------
    def _root_counter(self, top_index: int) -> int:
        slot = top_index % self.amap.arity
        effective = self.running_root.counter(slot)
        pending = sum(delta for _, s, delta in self._pending_root
                      if s == slot)
        return (effective + pending) \
            & ((1 << self.amap.counter_bits) - 1)

    def _apply_due(self, cycle: int) -> None:
        """Land root updates whose crash window has closed."""
        if self._crashing:
            return
        still_pending = []
        for entry in self._pending_root:
            complete_at, slot, delta = entry
            if complete_at is not None and complete_at <= cycle:
                self.running_root.add(slot, delta)
                if self.obs.enabled:
                    self.obs.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT,
                                     ts=complete_at,
                                     register="running_root", slot=slot,
                                     in_flight_landed=True)
            else:
                still_pending.append(entry)
        self._pending_root = still_pending

    def write_data(self, addr: int, data: bytes | None, cycle: int,
                   persist: bool = True) -> WriteOutcome:
        self._apply_due(cycle)
        outcome = super().write_data(addr, data, cycle, persist)
        # Schedule the update(s) this write put in flight: the propagation
        # pipeline runs after the data is accepted, so the window closes
        # one branch-fetch + hash-burst past the operation's end.
        for entry in self._pending_root:
            if entry[0] is None:
                entry[0] = cycle + outcome.cpu_stall + self._window_extra
        return outcome

    def read_data(self, addr: int, cycle: int) -> ReadOutcome:
        self._apply_due(cycle)
        return super().read_data(addr, cycle)

    def tick(self, cycle: int) -> None:
        self._apply_due(cycle)
        super().tick(cycle)

    # ------------------------------------------------------------------
    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        fetch_latency = 0
        current: TreeNode = leaf
        level, index = 0, leaf_index
        while level + 1 < self.amap.tree_levels:
            plevel, pindex = self.amap.parent_coords(level, index)
            parent, latency = self.fetch_node(plevel, pindex, charge=True)
            fetch_latency += latency
            expect_node(parent, SITNode, "eager: branch propagation")
            slot = self.amap.parent_slot(index)
            parent.bump_counter(slot, dummy_delta)
            self._mark_dirty(parent)
            current.seal(self.mac, self.store.node_addr(level, index),
                         parent.counter(slot))
            current, level, index = parent, plevel, pindex
        # The root update trails the persist: its completion cycle is
        # scheduled by :meth:`write_data` once the operation's end is
        # known — the crash window of §III-B.  A crash right after the
        # persist therefore always lands inside it.
        slot = self.amap.parent_slot(index)
        hash_latency = self.hash_engine.charge(
            self.amap.tree_levels, parallel=self.parallel_hashing)
        wpq_stall = self._persist_node(leaf, cycle) \
            if self.config.leaf_write_through else 0
        self._window_extra = fetch_latency + self.hash_engine.latency_cycles
        self._pending_root.append(
            [None, slot, dummy_delta])  # reprolint: disable=hot-path-allocation
        current.seal(self.mac, self.store.node_addr(level, index),
                     self._root_counter(index))
        if self.obs.enabled:
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, leaf=leaf_index,
                             cycles=fetch_latency + hash_latency + wpq_stall,
                             window_opened=True)
        return fetch_latency + hash_latency + wpq_stall

    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        # Eagerly maintained nodes always carry a current HMAC.
        stall = self._persist_node(node, cycle)
        if self.obs.enabled:
            level, index = self.store.coords_of(node)
            self.obs.instant(ev.EV_META_FLUSH, ev.TRACK_CTL,
                             scheme=self.name, level=level, index=index,
                             cycles=stall)
        return stall

    # ------------------------------------------------------------------
    def _on_crash(self) -> None:
        self._window_losses.add(len(self._pending_root))
        self._pending_root.clear()

    @property
    def in_window(self) -> bool:
        """True while at least one root update is still in flight."""
        return bool(self._pending_root)

    def recover(self) -> RecoveryReport:
        result = counter_summing_reconstruction(
            self.store, self.amap, self.mac, self.running_root,
            write_back=False)
        success = result.clean
        detail = ("eager root was consistent (crash landed outside the "
                  "window)" if success else
                  "crash landed inside the crash window: in-flight root "
                  "updates were lost and the stored root does not match "
                  "the reconstruction (Fig 5b)")
        return RecoveryReport(
            scheme=self.name, success=success,
            root_matched=result.root_matched,
            leaf_hmac_failures=result.leaf_hmac_failures,
            metadata_reads=result.metadata_reads,
            metadata_writes=result.metadata_writes,
            recovery_seconds=result.recovery_seconds,
            detail=detail)
