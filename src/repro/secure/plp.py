"""PLP — Persist-Level Parallelism (Freij et al., MICRO'20) adapted to SIT
(paper §V-A).

PLP natively streamlines *BMT* updates: branch updates flow through a
pipeline backed by a Pipelined Tree-update Table (PTT), and the root is
updated atomically with the leaf, giving root crash consistency.  Applied
to SIT — which is what the paper evaluates — the complicated inter-level
dependencies force PLP to **read, update and persist shadow copies of
every node in the branch** on each write: the whole branch travels through
the small metadata WPQ partition, and that traffic is exactly why the
paper measures PLP at ~2.7x baseline write latency and ~7x lazy metadata
traffic (§V-B, §V-E).

Because the branch persist is atomic (PTT-journalled), the root register
is updated immediately: PLP never suffers root crash inconsistency — it
just pays dearly for the privilege.
"""

from __future__ import annotations

from repro.cme.counters import CounterBlock
from repro.crash.recovery import counter_summing_reconstruction
from repro.obs import events as ev
from repro.secure.base import (
    RecoveryReport,
    SecureMemoryController,
    expect_node,
)
from repro.tree.node import SITNode
from repro.tree.store import TreeNode

#: On-chip structures from the PLP paper (§V-F): the PTT is 616 B and the
#: epoch tracking table (ETT) is 48 bits.
PTT_BYTES = 616
ETT_BITS = 48


class PLPController(SecureMemoryController):
    """Eager, atomic, whole-branch persistence (PLP-on-SIT)."""

    name = "plp"
    crash_consistent_root = True

    def __init__(self, config, recorder=None) -> None:
        super().__init__(config, recorder)
        self._shadow_writes = self.stats.counter("shadow_writes")

    # ------------------------------------------------------------------
    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        # The branch walk is the scheme's hot path (every persist touches
        # the whole branch), so the media addresses come from the interned
        # per-leaf chain instead of per-node store lookups, and the
        # parent coordinates are plain arithmetic.
        amap = self.amap
        arity = amap.arity
        tree_levels = amap.tree_levels
        branch_media = amap.branch_addrs(leaf_index)
        mac = self.mac
        fetch_latency = 0
        branch: list[TreeNode] = [leaf]  # reprolint: disable=hot-path-allocation
        current: TreeNode = leaf
        level, index = 0, leaf_index
        depth = 0
        meta_cache = self.meta_cache
        while level + 1 < tree_levels:
            plevel, pindex = level + 1, index // arity
            # Meta-cache hit fast path: `charge(0)` is free, so a resident
            # parent costs exactly the counted lookup `fetch_node` would
            # do (uncounted peek first — a miss must be counted once, by
            # the chain fetch, not twice).
            paddr = branch_media[depth + 1]
            if meta_cache.peek(paddr) is not None:
                parent = meta_cache.lookup(paddr).payload
                latency = 0
            else:
                parent, latency = self.fetch_node(plevel, pindex,
                                                  charge=True)
            fetch_latency += latency
            if parent.__class__ is not SITNode:
                expect_node(parent, SITNode, "plp: branch persist")
            slot = index % arity
            parent.bump_counter(slot, dummy_delta)
            self._mark_dirty(parent)
            current.seal(mac, branch_media[depth], parent.counter(slot))
            branch.append(parent)
            current, level, index = parent, plevel, pindex
            depth += 1
        # Atomic root update: no crash window (the PTT journals the
        # branch, so either all of it lands or none of it does).
        slot = index % arity
        self.running_root.add(slot, dummy_delta)
        current.seal(mac, branch_media[depth],
                     self.running_root.counter(slot))
        hash_latency = self.hash_engine.charge(
            len(branch), parallel=self.parallel_hashing)
        # Persist the *entire* branch, plus a shadow copy of each
        # intermediate node (PTT journalling), through the 10-entry
        # metadata WPQ partition — the back-pressure source.
        wpq = self.wpq
        nvm = self.nvm
        meta_writes = self._meta_writes
        shadow_writes = self._shadow_writes
        wpq_stall = 0
        for depth, node in enumerate(branch):
            # `_persist_node` with the branch address precomputed:
            # enqueue, serialise, count, mark the cached copy clean
            # (the dirty-tracking hooks are no-ops for this scheme).
            node_addr = branch_media[depth]
            wpq_stall += wpq.enqueue(node_addr, cycle, metadata=True)
            raw = node.to_bytes()
            nvm.write_line(node_addr, raw)
            meta_writes.value += 1
            cached = meta_cache.peek(node_addr)
            if cached is not None and cached.dirty:
                cached.dirty = False
            if depth:
                # PTT shadow copy: the same bytes, enqueued and written
                # again through the metadata partition.
                wpq_stall += wpq.enqueue(node_addr, cycle, metadata=True)
                nvm.write_line(node_addr, raw)
                meta_writes.value += 1
                shadow_writes.value += 1
        if self.obs.enabled:
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, leaf=leaf_index,
                             branch_nodes=len(branch),
                             cycles=fetch_latency + hash_latency + wpq_stall)
        return fetch_latency + hash_latency + wpq_stall

    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        # Branch nodes are persisted (and marked clean) at every write;
        # a dirty eviction can only be a straggler with a current HMAC.
        stall = self._persist_node(node, cycle)
        if self.obs.enabled:
            level, index = self.store.coords_of(node)
            self.obs.instant(ev.EV_META_FLUSH, ev.TRACK_CTL,
                             scheme=self.name, level=level, index=index,
                             cycles=stall)
        return stall

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        result = counter_summing_reconstruction(
            self.store, self.amap, self.mac, self.running_root,
            write_back=True)
        detail = ("PLP branch persistence kept the root consistent"
                  if result.clean else
                  "integrity violation detected during recovery")
        return RecoveryReport(
            scheme=self.name, success=result.clean,
            root_matched=result.root_matched,
            leaf_hmac_failures=result.leaf_hmac_failures,
            metadata_reads=result.metadata_reads,
            metadata_writes=result.metadata_writes,
            recovery_seconds=result.recovery_seconds,
            detail=detail)

    def onchip_overhead_bytes(self) -> int:
        return super().onchip_overhead_bytes() + PTT_BYTES + ETT_BITS // 8
