"""The lazy update scheme (paper §II-D4, Fig 6a).

On a leaf persist, only the leaf's *parent* counter is bumped (for future
verification of the persisted block); ancestors — including the root — are
touched only when their own children are later flushed by the metadata
cache.  The write critical path carries the parent fetch (with its
verification chain) plus the two HMACs the paper charges there (the
persisted block's and the parent's, §V-B).

The root register therefore trails the leaves by however much dirty state
sits in the metadata cache: after a crash, a counter-summing
reconstruction produces a root the stored register has never seen, and
recovery fails even without an attack — the root crash inconsistency
problem this scheme exists to demonstrate (§III-B).
"""

from __future__ import annotations

from repro.cme.counters import CounterBlock
from repro.crash.recovery import counter_summing_reconstruction
from repro.obs import events as ev
from repro.secure.base import RecoveryReport, SecureMemoryController
from repro.tree.store import TreeNode


class LazyController(SecureMemoryController):
    """Lazy root updates: fast-ish writes, unrecoverable after crashes."""

    name = "lazy"
    crash_consistent_root = False

    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        if not self.config.leaf_write_through:
            return 0
        parent_counter, fetch_latency = self._bump_parent(
            0, leaf_index, 1, cycle, charge=True)
        addr = self.amap.counter_block_addr(leaf_index)
        leaf.seal(self.mac, addr, parent_counter)
        # Leaf HMAC + parent HMAC on the critical path (§V-B).  The lazy
        # scheme's BMT-heritage pipeline serialises them (verify parent,
        # bump, then re-MAC) — streamlining this chain is precisely what
        # PLP contributed and what SCUE's dummy counter sidesteps.
        hash_latency = self.hash_engine.charge(2, parallel=False)
        wpq_stall = self._persist_node(leaf, cycle)
        if self.obs.enabled:
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, leaf=leaf_index,
                             cycles=fetch_latency + hash_latency + wpq_stall)
        return fetch_latency + hash_latency + wpq_stall

    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        """Evicting a dirty node needs its parent *now* — read (and
        verify) the ancestor chain, bump the parent, seal, persist.  The
        *reads* are the flush cost SCUE's dummy counter eliminates
        (§IV-A2); the sealing hashes pipeline with the writeback from the
        eviction buffer."""
        level, index = self.store.coords_of(node)
        parent_counter, fetch_latency = self._bump_parent(
            level, index, 1, cycle, charge=True)
        addr = self.store.node_addr(level, index)
        node.seal(self.mac, addr, parent_counter)
        self.hash_engine.charge(2, parallel=False)
        wpq_stall = self._persist_node(node, cycle)
        if self.obs.enabled:
            self.obs.instant(ev.EV_META_FLUSH, ev.TRACK_CTL,
                             scheme=self.name, level=level, index=index,
                             cycles=fetch_latency + wpq_stall)
        return fetch_latency + wpq_stall

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Attempt the reconstruct-and-compare recovery of Fig 5: the
        stored root lags the persisted leaves, so the comparison fails —
        a *false* attack report after an ordinary crash (§III-B)."""
        result = counter_summing_reconstruction(
            self.store, self.amap, self.mac, self.running_root,
            write_back=False)
        success = result.clean
        detail = ("lazy root happened to be consistent (no dirty metadata "
                  "at crash)" if success else
                  "root crash inconsistency: stored root does not match "
                  "the tree reconstructed from persisted leaf nodes")
        return RecoveryReport(
            scheme=self.name, success=success,
            root_matched=result.root_matched,
            leaf_hmac_failures=result.leaf_hmac_failures,
            metadata_reads=result.metadata_reads,
            metadata_writes=result.metadata_writes,
            recovery_seconds=result.recovery_seconds,
            detail=detail)
