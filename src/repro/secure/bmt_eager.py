"""An eager Bonsai-Merkle-Tree controller — the cross-tree comparison
point for §II-D4.

The paper picks SIT over BMT because SIT's branch HMACs are independent
once counters are bumped (one parallel hash burst per update), while a
BMT must hash *sequentially*: each level's digest is an input to the next
(``levels x hash latency`` on every update).  This controller implements
a faithful eager BMT over the same substrate — counter blocks as leaves,
8-digest intermediate nodes, an on-chip root digest — so the two designs
can be swept against hash latency side by side
(``benchmarks/test_ablation_sit_vs_bmt.py``).

BMT nodes are naturally reconstructible bottom-up (high levels are pure
functions of low levels, §III-D), so recovery rebuilds digests from the
persisted leaves and compares the root — no counter-summing needed.  The
root digest register is updated atomically with the persist here (we are
comparing *hashing structure*, not crash windows; give BMT the same
consistent-root courtesy as PLP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cme.counters import CounterBlock
from repro.errors import ConfigError, IntegrityError
from repro.mem.address import CACHE_LINE_SIZE
from repro.obs import events as ev
from repro.secure.base import (
    RecoveryReport,
    SecureMemoryController,
    expect_node,
)
from repro.tree.store import TreeNode

DIGEST_BITS = 64


@dataclass
class BMTMediaNode:
    """An intermediate BMT node: ``arity`` 64-bit child digests."""

    level: int
    index: int
    digests: list[int] | None = None
    arity: int = 8
    #: BMT nodes carry no self-MAC; parity with SITNode's interface.
    hmac_stale: bool = False

    def __post_init__(self) -> None:
        if self.digests is None:
            self.digests = [0] * self.arity
        if len(self.digests) != self.arity:
            raise ConfigError(
                f"BMT node needs {self.arity} digests")

    @property
    def is_blank(self) -> bool:
        return not any(self.digests)

    def set_digest(self, slot: int, digest: int) -> None:
        self.digests[slot] = digest & ((1 << DIGEST_BITS) - 1)
        self.hmac_stale = True

    def digest(self, slot: int) -> int:
        return self.digests[slot]

    def to_bytes(self) -> bytes:
        out = b"".join(d.to_bytes(8, "little") for d in self.digests)
        return out.ljust(CACHE_LINE_SIZE, b"\0")[:CACHE_LINE_SIZE]

    @classmethod
    def from_bytes(cls, level: int, index: int, data: bytes,
                   arity: int = 8) -> "BMTMediaNode":
        digests = [int.from_bytes(data[i * 8:(i + 1) * 8], "little")
                   for i in range(arity)]
        return cls(level, index, digests, arity)


class BMTEagerController(SecureMemoryController):
    """Eager BMT: sequential digest propagation on every persist."""

    name = "bmt-eager"
    crash_consistent_root = True
    #: The defining property: BMT hashing is a chain, not a burst.
    parallel_hashing = False

    def __init__(self, config, recorder=None) -> None:
        super().__init__(config, recorder)
        if self.amap.arity != 8:
            raise ConfigError("the BMT comparison point is 8-ary")
        #: On-chip root: one digest per top-level node (a 64 B register,
        #: the BMT analogue of SIT's root counters).
        self.root_digests = [0] * self.amap.arity

    # ==================================================================
    # Digest plumbing
    # ==================================================================
    def _digest_of(self, node: TreeNode) -> int:
        """Digest of a node's media image (keyed, address-bound)."""
        level, index = self.store.coords_of(node)
        return self.mac.mac(self.store.node_addr(level, index),
                            node.to_bytes())

    def _load_bmt(self, level: int, index: int) -> BMTMediaNode:
        raw = self.nvm.read_line(self.store.node_addr(level, index))
        self._meta_reads.add()
        return BMTMediaNode.from_bytes(level, index, raw, self.amap.arity)

    # ==================================================================
    # Fetch & verify: digest chain instead of counter MACs
    # ==================================================================
    def _fetch_chain(self, level: int, index: int) -> tuple[TreeNode, int, int]:
        line = self.store.node_addr(level, index)
        hit = self.meta_cache.lookup(line)
        if hit is not None:
            return hit.payload, 0, 0
        buffered = self._victim_buffer.get(line)
        if buffered is not None:
            return buffered, 0, 0
        expected, latency, fetched = self._expected_digest(level, index)
        hit = self.meta_cache.peek(line)
        if hit is not None:
            return hit.payload, latency, fetched
        latency = max(latency, self.nvm.read_latency(line))
        if level == 0:
            raw = self.nvm.read_line(line)
            self._meta_reads.add()
            node: TreeNode = CounterBlock.from_bytes(index, raw)
        else:
            node = self._load_bmt(level, index)
        if not (node.is_blank and expected == 0) \
                and self._digest_of(node) != expected:
            raise IntegrityError(
                f"{self.name}: digest mismatch for node "
                f"(level {level}, index {index})")
        self._install(line, node, dirty=False)
        return node, latency, fetched + 1

    def _expected_digest(self, level: int,
                         index: int) -> tuple[int, int, int]:
        if level + 1 >= self.amap.tree_levels:
            return self.root_digests[index % self.amap.arity], 0, 0
        plevel, pindex = self.amap.parent_coords(level, index)
        parent, latency, fetched = self._fetch_chain(plevel, pindex)
        expect_node(parent, BMTMediaNode, "bmt-eager: digest chain")
        return parent.digest(self.amap.parent_slot(index)), latency, fetched

    # ==================================================================
    # Eager update: sequential re-hash of the branch
    # ==================================================================
    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        fetch_latency = 0
        current: TreeNode = leaf
        level, index = 0, leaf_index
        hashes = 0
        while level + 1 < self.amap.tree_levels:
            plevel, pindex = self.amap.parent_coords(level, index)
            parent, latency = self.fetch_node(plevel, pindex, charge=True)
            fetch_latency += latency
            expect_node(parent, BMTMediaNode, "bmt-eager: branch re-hash")
            parent.set_digest(self.amap.parent_slot(index),
                              self._digest_of(current))
            hashes += 1
            self._mark_dirty(parent)
            current, level, index = parent, plevel, pindex
        self.root_digests[index % self.amap.arity] = \
            self._digest_of(current)
        hashes += 1
        # The BMT chain: each digest feeds the next level's input.
        hash_latency = self.hash_engine.charge(hashes, parallel=False)
        wpq_stall = self._persist_node(leaf, cycle) \
            if self.config.leaf_write_through else 0
        if self.obs.enabled:
            self.obs.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT,
                             register="root_digest",
                             slot=index % self.amap.arity)
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, leaf=leaf_index,
                             cycles=fetch_latency + hash_latency + wpq_stall)
        return fetch_latency + hash_latency + wpq_stall

    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        # Digests were maintained eagerly; the image is current.
        stall = self._persist_node(node, cycle)
        if self.obs.enabled:
            level, index = self.store.coords_of(node)
            self.obs.instant(ev.EV_META_FLUSH, ev.TRACK_CTL,
                             scheme=self.name, level=level, index=index,
                             cycles=stall)
        return stall

    # ==================================================================
    # Recovery: rebuild digests bottom-up (BMT's native strength)
    # ==================================================================
    def recover(self) -> RecoveryReport:
        amap = self.amap
        reads = 0
        digests: list[int] = []
        for index in range(amap.num_counter_blocks):
            raw = self.nvm.peek_line(amap.counter_block_addr(index))
            leaf = CounterBlock.from_bytes(index, raw)
            reads += 1
            digests.append(0 if leaf.is_blank else self._digest_of(leaf))
        rebuilt: list[BMTMediaNode] = []
        for level in range(1, amap.tree_levels):
            nodes = []
            for index in range(amap.level_width(level)):
                chunk = digests[index * amap.arity:(index + 1) * amap.arity]
                chunk += [0] * (amap.arity - len(chunk))
                nodes.append(BMTMediaNode(level, index, chunk, amap.arity))
            digests = [0 if node.is_blank else self._digest_of(node)
                       for node in nodes]
            rebuilt.extend(nodes)
        rebuilt_roots = digests + [0] * (amap.arity - len(digests))
        success = rebuilt_roots == self.root_digests
        writes = 0
        if success:
            for node in rebuilt:
                self.store.save(node, counted=False)
                writes += 1
        return RecoveryReport(
            scheme=self.name, success=success, root_matched=success,
            metadata_reads=reads, metadata_writes=writes,
            recovery_seconds=reads * 100e-9,
            detail="BMT rebuilt bottom-up; root digest matched"
            if success else "rebuilt root digest mismatch")

    def onchip_overhead_bytes(self) -> int:
        return self.amap.arity * DIGEST_BITS // 8  # the root digests
