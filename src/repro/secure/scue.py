"""SCUE — the ShortCut UpdatE scheme (paper §IV, Figs 6c/7/8).

Three ideas compose:

**Shortcut root update** (§IV-A2).  A leaf persist updates the on-chip
``Recovery_root`` register *directly* — one adder bump, no intermediate
nodes read, no branch hashed — so the root is consistent with the
persisted leaves at every instant and the crash window disappears.

**Lazy computing + dummy counters** (§IV-A1/2).  The persisted leaf still
needs a fresh HMAC, but its parent counter input is replaced by the *dummy
counter* — the sum of the node's own counters, which counter-summing
updating guarantees equals the parent counter.  One hash, computed from
data already in hand.  Intermediate nodes are updated lazily (when their
children flush) and hashed only when they are themselves flushed, also via
their own dummy counter.  Parent updates after a leaf persist happen *off*
the write critical path (the forced background read-and-update of §IV-A2),
so they cost traffic but no write latency.

**Counter-summing reconstruction** (§IV-B).  Because every parent counter
is maintained as the sum of its child's counters, the whole SIT can be
rebuilt bottom-up from the consistent leaves after a reboot — the BMT-like
property vanilla SIT lacks — and compared against ``Recovery_root``.
Roll-forward attacks die on leaf HMACs; roll-back/replay attacks die on
the root comparison (Table I).

The ``Running_root`` register serves runtime verification exactly like the
lazy scheme's root (same security argument, §IV-A3); ``Recovery_root``
exists purely so recovery has an instantaneously consistent trust base.
"""

from __future__ import annotations

from repro.cme.counters import CounterBlock
from repro.crash.anubis import AgitTracker, AsitTracker
from repro.crash.recovery import counter_summing_reconstruction
from repro.crash.star import StarTracker
from repro.obs import events as ev
from repro.secure.base import (
    REGISTER_UPDATE_CYCLES,
    RecoveryReport,
    SecureMemoryController,
)
from repro.secure.roots import ROOT_REGISTER_BYTES, RootRegister
from repro.tree.store import TreeNode


class SCUEController(SecureMemoryController):
    """The paper's scheme: instantaneous root updates, reconstructible SIT."""

    name = "scue"
    crash_consistent_root = True

    def __init__(self, config, recorder=None) -> None:
        super().__init__(config, recorder)
        self.recovery_root = RootRegister(
            "recovery_root", self.amap.arity, self.amap.counter_bits)
        if config.recovery_tracker == "star":
            self.tracker: StarTracker | AgitTracker | None = \
                StarTracker(self.amap)
        elif config.recovery_tracker == "agit":
            self.tracker = AgitTracker(self.amap)
        elif config.recovery_tracker == "asit":
            self.tracker = AsitTracker(self.amap)
        else:
            self.tracker = None
        self._shortcut_updates = self.stats.counter("shortcut_root_updates")
        #: Leaves per top-level subtree — the divisor of
        #: :meth:`_root_slot_of_leaf`, precomputed off the per-write path.
        self._top_subtree_leaves = \
            self.amap.arity ** (self.amap.tree_levels - 1)
        #: Osiris-style relaxed counter persistence (§VII): bumps since
        #: the last forced write-back, per leaf.
        self._osiris_pending: dict[int, int] = {}
        self._osiris_writebacks = self.stats.counter("osiris_writebacks")

    # ------------------------------------------------------------------
    # Fast-recovery tracker wiring
    # ------------------------------------------------------------------
    def _on_node_dirtied(self, level: int, index: int) -> None:
        if self.tracker is not None:
            self.tracker.on_dirty(level, index)

    def _on_node_updated(self, level: int, index: int) -> None:
        if self.tracker is not None:
            self.tracker.on_update(level, index)

    def _on_node_cleaned(self, level: int, index: int) -> None:
        if self.tracker is not None:
            self.tracker.on_clean(level, index)

    # ------------------------------------------------------------------
    def _root_slot_of_leaf(self, leaf_index: int) -> int:
        """Which Recovery_root counter covers this leaf: the index of the
        top-level subtree it belongs to (§IV-B2's "first 1/8 of the leaf
        level" example)."""
        return (leaf_index // self._top_subtree_leaves) % self.amap.arity

    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        if not self.config.leaf_write_through:
            # Deferred-leaf mode: the shortcut still fires per bump (a
            # register write never needed the leaf durable), so the
            # Recovery_root never lags the counters.
            self.recovery_root.add(self._root_slot_of_leaf(leaf_index),
                                   dummy_delta)
            self._shortcut_updates.add()
            if self.obs.enabled:
                self.obs.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT,
                                 register="recovery_root", shortcut=True,
                                 leaf=leaf_index)
            return REGISTER_UPDATE_CYCLES \
                + self._osiris_writeback(leaf, leaf_index, dummy_delta,
                                         cycle)
        # 1. Dummy counter + one HMAC: everything needed is on-chip.
        dummy = leaf.dummy_counter(self.amap.counter_bits)
        addr = self.amap.counter_block_addr(leaf_index)
        leaf.seal(self.mac, addr, dummy)
        hash_latency = self.hash_engine.charge(1)
        # 2. Shortcut: bump the Recovery_root immediately — the write is
        #    crash consistent from this point on.
        self.recovery_root.add(self._root_slot_of_leaf(leaf_index),
                               dummy_delta)
        self._shortcut_updates.value += 1
        # 3. Persist the leaf.
        wpq_stall = self._persist_node(leaf, cycle)
        # 4. Parent update off the critical path (§IV-A2): the branch is
        #    read and the parent counter set to the dummy.  It completes
        #    before the next operation (ordering), but its reads and
        #    hashes cost the write nothing (charge=False).
        self._update_parent_counter(0, leaf_index, set_to=dummy,
                                    bump_by=None, cycle=cycle, charge=False)
        if self.obs.enabled:
            self.obs.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT,
                             register="recovery_root", shortcut=True,
                             leaf=leaf_index)
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, leaf=leaf_index,
                             cycles=hash_latency + REGISTER_UPDATE_CYCLES
                             + wpq_stall)
        return hash_latency + REGISTER_UPDATE_CYCLES + wpq_stall

    def _osiris_writeback(self, leaf: CounterBlock, leaf_index: int,
                          dummy_delta: int, cycle: int) -> int:
        """Osiris discipline: force the counter block to media every
        ``osiris_limit`` bumps (and unconditionally after an overflow,
        whose re-encryption invalidates all stale search windows).
        Returns the critical-path cycles of a forced write-back (zero on
        the common, deferred path)."""
        limit = self.config.osiris_limit
        if not limit:
            return 0
        pending = self._osiris_pending.get(leaf_index, 0) + 1
        if pending < limit and dummy_delta == 1:
            self._osiris_pending[leaf_index] = pending
            return 0
        self._osiris_pending[leaf_index] = 0
        self._osiris_writebacks.add()
        dummy = leaf.dummy_counter(self.amap.counter_bits)
        leaf.seal(self.mac, self.amap.counter_block_addr(leaf_index), dummy)
        hash_latency = self.hash_engine.charge(1)
        wpq_stall = self._persist_node(leaf, cycle)
        self._update_parent_counter(0, leaf_index, set_to=dummy,
                                    bump_by=None, cycle=cycle, charge=False)
        if self.obs.enabled:
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, leaf=leaf_index,
                             osiris_forced=True,
                             cycles=hash_latency + wpq_stall)
        return hash_latency + wpq_stall

    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        """Flush via dummy counter (Fig 7): the parent counter input is
        the node's own counter sum, so the eviction needs **no reads** —
        the contrast with the lazy scheme's flush path.  The sealing hash
        itself pipelines with the writeback from the eviction buffer and
        costs the triggering access nothing."""
        level, index = self.store.coords_of(node)
        dummy = node.dummy_counter(self.amap.counter_bits) \
            if isinstance(node, CounterBlock) else node.dummy_counter()
        node.seal(self.mac, self.store.node_addr(level, index), dummy)
        self.hash_engine.charge(1)
        wpq_stall = self._persist_node(node, cycle)
        # Counter-summing update of the parent (Running_root for top-level
        # nodes), again ordered-but-unbilled.
        self._update_parent_counter(level, index, set_to=dummy,
                                    bump_by=None, cycle=cycle, charge=False)
        if self.obs.enabled:
            self.obs.instant(ev.EV_META_FLUSH, ev.TRACK_CTL,
                             scheme=self.name, level=level, index=index,
                             cycles=wpq_stall)
        return wpq_stall

    # ------------------------------------------------------------------
    def _on_crash(self) -> None:
        self._osiris_pending.clear()

    def recover(self) -> RecoveryReport:
        """Counter-summing reconstruction against the Recovery_root
        (§IV-B, Fig 8).  Under relaxed counter persistence the Osiris
        phase first rebuilds the true leaf counters from data MACs.
        With a STAR/AGIT tracker attached, recovery is *targeted*: only
        the nodes that were dirty at crash time are rebuilt (§V-D)."""
        if self.tracker is not None and not self.config.osiris_limit:
            return self._recover_targeted()
        osiris_reads = 0
        if self.config.osiris_limit:
            from repro.crash.osiris import osiris_counter_recovery
            from repro.errors import RecoveryError
            try:
                osiris = osiris_counter_recovery(self,
                                                 self.config.osiris_limit)
                osiris_reads = osiris.metadata_reads
            except RecoveryError as exc:
                return RecoveryReport(
                    scheme=self.name, success=False, root_matched=False,
                    detail=f"Osiris counter recovery failed: {exc}")
        result = counter_summing_reconstruction(
            self.store, self.amap, self.mac, self.recovery_root,
            write_back=True)
        success = result.clean
        if success:
            # Runtime trust resumes from the rebuilt tree: Running_root
            # must cover the rebuilt top-level nodes.
            self.running_root.restore(result.root_counters)
            if self.tracker is not None:
                self.tracker.reset()
        seconds = result.recovery_seconds
        reads = result.metadata_reads + osiris_reads
        if success:
            detail = "SIT reconstructed from leaves; Recovery_root matched"
        elif result.leaf_hmac_failures:
            detail = ("leaf HMAC verification failed (roll-forward or "
                      "roll-back attack, Table I)")
        else:
            detail = ("Recovery_root mismatch (replay/roll-back attack, "
                      "Table I)")
        return RecoveryReport(
            scheme=self.name, success=success,
            root_matched=result.root_matched,
            leaf_hmac_failures=result.leaf_hmac_failures,
            metadata_reads=reads,
            metadata_writes=result.metadata_writes,
            recovery_seconds=seconds,
            detail=detail)

    def _recover_targeted(self) -> RecoveryReport:
        """STAR/AGIT-accelerated recovery: rebuild only the nodes that
        were dirty at crash time, then verify the Recovery_root."""
        from repro.crash.fast_recovery import targeted_reconstruction
        result = targeted_reconstruction(self, self.tracker.stale_coords())
        success = result.clean
        if success:
            self.running_root.restore(result.root_counters)
            self.tracker.reset()
            detail = (f"targeted ({self.tracker.name}) recovery rebuilt "
                      f"{result.stale_rebuilt} stale nodes; "
                      "Recovery_root matched")
        elif result.leaf_hmac_failures:
            detail = "stale-leaf HMAC verification failed"
        else:
            detail = "Recovery_root mismatch after targeted rebuild"
        return RecoveryReport(
            scheme=self.name, success=success,
            root_matched=result.root_matched,
            leaf_hmac_failures=result.leaf_hmac_failures,
            metadata_reads=result.metadata_reads,
            metadata_writes=result.metadata_writes,
            recovery_seconds=result.recovery_seconds,
            detail=detail)

    def onchip_overhead_bytes(self) -> int:
        """Two 64 B non-volatile registers (§V-F)."""
        return 2 * ROOT_REGISTER_BYTES
