"""The secure memory controller: shared machinery for every update scheme.

:class:`SecureMemoryController` owns the resources every scheme shares —
the NVM device, the WPQ, the security-metadata cache, the CME engine, the
HMAC unit and the SIT media image — and implements the *common* read/write
paths: counter-block fetch-and-verify chains, minor-counter bumps with
overflow re-encryption, data encryption + per-line data MACs ("stored in
ECC bits" per Synergy, so they travel with the line and add no traffic),
and WPQ/timing accounting.

Scheme subclasses (baseline/lazy/eager/plp/bmf/scue) fill in exactly three
policy hooks:

* :meth:`_on_leaf_persist` — what happens on the write critical path when
  a counter block must be made durable with its data (paper Fig 6);
* :meth:`_flush_node` — how a dirty metadata node is sealed when the
  metadata cache evicts it;
* :meth:`recover` — what the scheme can honestly do after a crash.

Timing conventions (DESIGN.md §4): a *write latency* is
``verification-fetch + scheme critical path + WPQ stall + write service``;
a *read latency* is ``max(array read, counter-fetch chain)``.  Latencies
returned from public methods are what the CPU model stalls for; traffic
that is off the critical path still lands in the statistics and the WPQ.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cme.counters import CounterBlock, MINOR_LIMIT, MINORS_PER_BLOCK
from repro.cme.encryption import CMEEngine
from repro.errors import (
    IntegrityError,
    MetadataTypeError,
    SimulationError,
)
from repro.mem.address import AddressMap, CACHE_LINE_SIZE
from repro.mem.cache import SetAssociativeCache
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import WritePendingQueue
from repro.obs import events as ev
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.secure.roots import ROOT_REGISTER_BYTES, RootRegister
from repro.tree.hmac_engine import HashEngine
from repro.tree.node import SITNode
from repro.tree.store import SITStore, TreeNode
from repro.util.stats import StatGroup

if TYPE_CHECKING:  # avoid the secure <-> sim layering cycle at runtime
    from repro.sim.config import SystemConfig

ZERO_LINE = bytes(CACHE_LINE_SIZE)
#: Cycles to generate a dummy counter / bump an on-chip register — simple
#: adder work, essentially free next to a hash.
REGISTER_UPDATE_CYCLES = 2
#: Flat charge for the 64-line re-encryption burst after a minor-counter
#: overflow (row-hit reads of the covered lines; writes go via the WPQ).
OVERFLOW_READ_CYCLES_PER_LINE = 30


def expect_node(node: "TreeNode", cls: type, context: str):
    """Narrow a fetched tree node to the expected type, raising a typed
    error (not ``assert``, which ``python -O`` strips) when the address
    map handed back the wrong node kind — that is metadata corruption
    in the model itself and must fail even in optimised runs."""
    if not isinstance(node, cls):
        raise MetadataTypeError(
            f"{context}: expected {cls.__name__}, "
            f"got {type(node).__name__}")
    return node


@dataclass(frozen=True, slots=True)
class ReadOutcome:
    """Result of a data read at the controller.

    ``array_latency``/``flush_cycles`` break the latency down for cycle
    attribution: ``latency == max(array, counter_fetch) + flush``.
    """

    latency: int
    plaintext: bytes
    counter_fetch_latency: int = 0
    array_latency: int = 0
    flush_cycles: int = 0


@dataclass(frozen=True, slots=True)
class WriteOutcome:
    """Result of a data write at the controller.

    ``latency`` is the full write latency recorded for Fig 9;
    ``cpu_stall`` is the portion a persisting CPU actually waits for
    (everything except the write service time, which the WPQ hides).
    The remaining fields split ``critical_cycles`` for attribution:
    ``critical == fetch + overflow + scheme + flush``.
    """

    latency: int
    cpu_stall: int
    critical_cycles: int
    wpq_stall: int
    fetch_latency: int = 0
    overflow_cycles: int = 0
    scheme_cycles: int = 0
    flush_cycles: int = 0


@dataclass
class RecoveryReport:
    """Outcome of post-crash recovery (§IV-B, Fig 13, Table I)."""

    scheme: str
    success: bool
    root_matched: bool
    leaf_hmac_failures: list[int] = field(default_factory=list)
    metadata_reads: int = 0
    metadata_writes: int = 0
    recovery_seconds: float = 0.0
    detail: str = ""

    @property
    def attack_reported(self) -> bool:
        """True when recovery flagged an integrity violation — correct
        after a real attack, a *false positive* for root-crash-inconsistent
        schemes (§III-B)."""
        return not self.success


class SecureMemoryController(ABC):
    """Base class for all evaluated schemes."""

    #: Scheme name used by the factory and in reports.
    name = "abstract"
    #: Whether this scheme's root survives a crash consistently (§III-B).
    crash_consistent_root = False
    #: Whether HMACs of a fetch/update chain can be computed in parallel
    #: (true for SIT-family schemes, §II-D4).
    parallel_hashing = True

    def __init__(self, config: "SystemConfig",
                 recorder: "TraceRecorder | NullRecorder | None" = None
                 ) -> None:
        self.config = config
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.amap: AddressMap = config.address_map()
        self.timing = config.timing_model()
        self.stats = StatGroup("controller")
        self.nvm = NVMDevice(self.amap.total_capacity, self.timing,
                             self.stats.child("nvm"),
                             track_wear=config.track_wear,
                             recorder=self.obs)
        self.wpq = WritePendingQueue(
            config.wpq_data_entries, config.wpq_metadata_entries,
            drain_cycles=self.timing.write_drain_cycles,
            stats=self.stats.child("wpq"),
            recorder=self.obs)
        self.meta_cache = SetAssociativeCache(
            config.metadata_cache_size, config.metadata_cache_ways,
            name="metadata_cache",
            stats=self.stats.child("metadata_cache"))
        self.hash_engine = HashEngine(config.hash_latency, config.mac_key,
                                      self.stats.child("hash_engine"),
                                      recorder=self.obs)
        self.mac = self.hash_engine.mac
        self.cme = CMEEngine(self.amap, config.cme_key,
                             self.stats.child("cme"))
        self.store = SITStore(self.nvm, self.amap)
        self.running_root = RootRegister("running_root", self.amap.arity,
                                 self.amap.counter_bits)
        # Per-line data MACs, modelled as ECC-resident (Synergy): durable
        # with the line itself, zero extra traffic.
        self.data_macs: dict[int, int] = {}
        self._plaintexts: dict[int, bytes] = {}
        #: Critical-path cycles accumulated by synchronous eviction
        #: handling during the current operation (reset per op).
        self._flush_charge = 0
        #: True while a power failure is being processed: time-driven
        #: work (e.g. eager's in-flight root updates) must not complete
        #: during ADR/eADR flushing — the compute pipeline is dead.
        self._crashing = False
        self._flush_depth = 0
        self._op_cycle = 0
        #: Eviction (victim) buffer: a victim being flushed is still
        #: on-chip and snoopable until its writeback completes — without
        #: this, a nested fetch during the flush would read the stale NVM
        #: image and lose counter updates.
        self._victim_buffer: dict[int, TreeNode] = {}
        # Statistics
        self._data_reads = self.stats.counter("data_reads")
        self._data_writes = self.stats.counter("data_writes")
        self._meta_reads = self.stats.counter("meta_reads")
        self._meta_writes = self.stats.counter("meta_writes")
        self._overflows = self.stats.counter("counter_overflows")
        # Histograms, not bare means: the figures argue about tails.
        # ``.mean``/``.count`` export keys match the old WeightedMeans.
        self._write_latency = self.stats.histogram("write_latency")
        self._read_latency = self.stats.histogram("read_latency")
        self._verify_latency = self.stats.histogram("verify_latency")
        self._crashes = self.stats.counter("crashes")

    # ==================================================================
    # Policy hooks
    # ==================================================================
    @abstractmethod
    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        """Make the freshly bumped counter block durable per the scheme's
        policy (paper Fig 6).  Returns write-critical-path cycles."""

    @abstractmethod
    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        """Seal and persist a dirty metadata node evicted from the
        metadata cache.  Returns the cycles the eviction puts on the
        triggering access's critical path — the cache slot is needed
        *now*, so parent reads a scheme performs here (lazy) stall the
        access, while dummy-counter sealing (SCUE) costs one hash."""

    @abstractmethod
    def recover(self) -> RecoveryReport:
        """Attempt post-crash recovery and integrity re-establishment."""

    def _on_crash(self) -> None:
        """Scheme-specific crash behaviour (e.g. dropping in-flight root
        updates).  Default: nothing extra."""

    def _on_node_dirtied(self, level: int, index: int) -> None:
        """Notification that a cached metadata node became dirty (fast-
        recovery trackers hook this)."""

    def _on_node_updated(self, level: int, index: int) -> None:
        """Notification fired on *every* cached-metadata update, including
        updates to already-dirty nodes (content-journalling trackers like
        ASIT pay per update, not per transition)."""

    def _on_node_cleaned(self, level: int, index: int) -> None:
        """Notification that a node's NVM copy was brought up to date."""

    # ==================================================================
    # Metadata fetch-and-verify
    # ==================================================================
    def _root_counter(self, top_index: int) -> int:
        """Trusted counter used to verify a top-level tree node."""
        return self.running_root.counter(top_index % self.amap.arity)

    def _parent_counter_chain(self, level: int,
                              index: int) -> tuple[int, int, int]:
        """Trusted parent counter for node ``(level, index)``, fetching
        (and verifying) ancestors as needed.  Returns
        ``(counter, read_latency, nodes_fetched)``."""
        if level + 1 >= self.amap.tree_levels:
            return self._root_counter(index), 0, 0
        plevel, pindex = self.amap.parent_coords(level, index)
        parent, latency, fetched = self._fetch_chain(plevel, pindex)
        return parent.counter(self.amap.parent_slot(index)), latency, fetched

    def _fetch_chain(self, level: int, index: int) -> tuple[TreeNode, int, int]:
        """Fetch node ``(level, index)`` through the metadata cache,
        verifying every uncached ancestor down from the trust base.
        Returns ``(node, read_latency, nodes_fetched)``.

        The chain's addresses are all computable from the leaf address (no
        pointer chasing), so the reads issue in parallel across banks: the
        chain's read latency is the *max* of the individual reads, not the
        sum — the memory-level parallelism SIT verification enjoys."""
        line = self.store.node_addr(level, index)
        hit = self.meta_cache.lookup(line)
        if hit is not None:
            return hit.payload, 0, 0
        buffered = self._victim_buffer.get(line)
        if buffered is not None:
            # Snoop hit in the eviction buffer: still on-chip, trusted.
            return buffered, 0, 0
        parent_counter, latency, fetched = \
            self._parent_counter_chain(level, index)
        # The ancestor fetch can trigger eviction flushes that themselves
        # fetched (and possibly updated) this very node — re-check before
        # loading a stale media image over fresh on-chip state.
        hit = self.meta_cache.peek(line)
        if hit is not None:
            return hit.payload, latency, fetched
        buffered = self._victim_buffer.get(line)
        if buffered is not None:
            return buffered, latency, fetched
        latency = max(latency, self.nvm.read_latency(line))
        node = self.store.load(level, index)
        self._meta_reads.value += 1
        if not node.verify(self.mac, line, parent_counter):
            raise IntegrityError(
                f"{self.name}: verification failed for tree node "
                f"(level {level}, index {index}) at {line:#x}")
        self._install(line, node, dirty=False)
        if self.obs.enabled:
            self.obs.instant(ev.EV_VERIFY_HOP, ev.TRACK_VERIFY,
                             level=level, index=index, addr=line,
                             read_latency=latency)
        return node, latency, fetched + 1

    def fetch_node(self, level: int, index: int, charge: bool = True,
                   speculative: bool = False) -> tuple[TreeNode, int]:
        """Public fetch: returns the node and the critical-path latency
        (reads + one parallel hash burst for the verified chain).

        ``charge=False``: hashes and reads still happen (and are counted)
        but the latency is reported as zero — off-critical-path traffic
        like SCUE's background parent updates.

        ``speculative=True``: the *read* latency is charged but the
        verification hashes are not — the consumer uses the data while the
        MAC check completes in the background (standard speculative
        verification on the read path; a failed check still raises, it
        just does not stall the pipeline).  Writes never use this: a
        persist is durable only after its HMAC is computed."""
        node, read_latency, fetched = self._fetch_chain(level, index)
        hash_latency = self.hash_engine.charge(
            fetched, parallel=self.parallel_hashing)
        if not charge:
            return node, 0
        if speculative:
            return node, read_latency
        return node, read_latency + (hash_latency if fetched else 0)

    def _install(self, line: int, node: TreeNode, dirty: bool) -> None:
        victim = self.meta_cache.insert(line, payload=node, dirty=dirty)
        if dirty:
            level, index = self.store.coords_of(node)
            self._on_node_dirtied(level, index)
        if victim is not None and victim.dirty:
            # Flush synchronously: the slot is needed now, and the NVM
            # image must be current before any re-fetch of this line.
            # The victim sits in the eviction buffer until done.
            self._flush_depth += 1
            if self._flush_depth > 64:
                raise SimulationError(
                    "runaway eviction cascade in the metadata cache")
            self._victim_buffer[victim.addr] = victim.payload
            try:
                self._flush_charge += self._flush_node(victim.payload,
                                                       self._op_cycle)
            finally:
                self._flush_depth -= 1
                self._victim_buffer.pop(victim.addr, None)

    def _mark_dirty(self, node: TreeNode) -> None:
        """Mark an already-resident node dirty in the metadata cache."""
        if isinstance(node, CounterBlock):
            line = self.amap.counter_block_addr(node.index)
        else:
            line = self.store.node_addr(node.level, node.index)
        level, index = self.store.coords_of(node)
        self._on_node_updated(level, index)
        cached = self.meta_cache.peek(line)
        if cached is None:
            # Node fell out between fetch and update (tiny caches in
            # stress tests): reinstall dirty.
            self._install(line, node, dirty=True)
            return
        if not cached.dirty:
            cached.dirty = True
            self._on_node_dirtied(level, index)

    def _mark_clean(self, node: TreeNode) -> None:
        if isinstance(node, CounterBlock):
            line = self.amap.counter_block_addr(node.index)
        else:
            line = self.store.node_addr(node.level, node.index)
        cached = self.meta_cache.peek(line)
        if cached is not None and cached.dirty:
            cached.dirty = False
        level, index = self.store.coords_of(node)
        self._on_node_cleaned(level, index)

    # ==================================================================
    # Shared persist helpers used by scheme hooks
    # ==================================================================
    def _persist_node(self, node: TreeNode, cycle: int) -> int:
        """Serialise ``node`` to NVM through the metadata WPQ partition.
        Returns the WPQ stall (usually zero; PLP's branch persists can
        back-pressure the 10-entry queue)."""
        if isinstance(node, CounterBlock):
            addr = self.amap.counter_block_addr(node.index)
        else:
            addr = self.store.node_addr(node.level, node.index)
        stall = self.wpq.enqueue(addr, cycle, metadata=True)
        self.store.save(node)
        self._meta_writes.value += 1
        self._mark_clean(node)
        return stall

    def _bump_parent(self, level: int, index: int, amount: int, cycle: int,
                     charge: bool) -> tuple[int, int]:
        """Bump the parent counter of node ``(level, index)`` by ``amount``
        (the lazy/eager "+1 per child event" discipline) and return
        ``(new_counter_value, critical_latency)``.  Top-level nodes bump
        the Running_root register."""
        slot = self.amap.parent_slot(index)
        if level + 1 >= self.amap.tree_levels:
            self.running_root.add(slot, amount)
            if self.obs.enabled:
                self.obs.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT,
                                 register="running_root", slot=slot,
                                 amount=amount, on_critical_path=charge)
            return (self.running_root.counter(slot),
                    REGISTER_UPDATE_CYCLES if charge else 0)
        plevel, pindex = self.amap.parent_coords(level, index)
        parent, latency = self.fetch_node(plevel, pindex, charge=charge)
        expect_node(parent, SITNode, f"{self.name}: parent bump")
        parent.bump_counter(slot, amount)
        self._mark_dirty(parent)
        return parent.counter(slot), latency if charge else 0

    def _update_parent_counter(self, level: int, index: int,
                               set_to: int | None, bump_by: int | None,
                               cycle: int, charge: bool) -> int:
        """Update the parent counter of node ``(level, index)``: either
        overwrite it (counter-summing) or bump it (lazy +1).  Top-level
        nodes update the Running_root register instead.  Returns the
        critical-path latency when ``charge`` is true."""
        slot = self.amap.parent_slot(index)
        if level + 1 >= self.amap.tree_levels:
            if set_to is not None:
                self.running_root.set(slot, set_to)
            else:
                self.running_root.add(slot, bump_by or 1)
            if self.obs.enabled:
                self.obs.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT,
                                 register="running_root", slot=slot,
                                 on_critical_path=charge)
            return REGISTER_UPDATE_CYCLES if charge else 0
        plevel, pindex = self.amap.parent_coords(level, index)
        parent, latency = self.fetch_node(plevel, pindex, charge=charge)
        expect_node(parent, SITNode, f"{self.name}: parent update")
        if set_to is not None:
            parent.set_counter(slot, set_to)
        else:
            parent.bump_counter(slot, bump_by or 1)
        self._mark_dirty(parent)
        return latency if charge else 0

    def drain_pending(self, cycle: int) -> int:
        """Collect the eviction cycles accumulated by synchronous flushes
        during the current operation — those are critical path (the cache
        slots were needed) and the caller charges them."""
        charged = self._flush_charge
        self._flush_charge = 0
        return charged

    # ==================================================================
    # Data path
    # ==================================================================
    def _payload_for(self, line: int, data: bytes | None) -> bytes:
        if data is not None:
            if len(data) != CACHE_LINE_SIZE:
                data = (data + ZERO_LINE)[:CACHE_LINE_SIZE]
            return bytes(data)
        known = self._plaintexts.get(line)
        if known is not None:
            return known
        return hashlib.blake2b(line.to_bytes(8, "little"),
                               digest_size=32).digest() * 2

    def _data_mac(self, line: int, ciphertext: bytes,
                  leaf: CounterBlock) -> int:
        slot = self.amap.minor_slot_of_data(line)
        return self.mac.mac(line, ciphertext, leaf.major, leaf.minor_of(slot))

    def _bump_leaf(self, leaf: CounterBlock, line: int,
                   cycle: int) -> tuple[int, int]:
        """Bump the minor counter for ``line``; handle overflow
        re-encryption.  Returns ``(dummy_delta, extra_cycles)``."""
        slot = self.amap.minor_slot_of_data(line)
        bits = self.amap.counter_bits
        if leaf.minors[slot] + 1 < MINOR_LIMIT:
            # Fast path: a non-overflowing bump moves the dummy counter by
            # exactly 1 (mod 2**bits), so skip the two 64-term sums and
            # the minors snapshot the overflow path needs.
            leaf.bump(slot)
            self._mark_dirty(leaf)
            return 1, 0
        before = leaf.dummy_counter(bits)
        # Overflow path: re-encrypting 64 lines dwarfs one copy.
        old_minors = list(leaf.minors)  # reprolint: disable=hot-path-allocation
        old_major = leaf.major
        event = leaf.bump(slot)
        self._mark_dirty(leaf)
        delta = (leaf.dummy_counter(bits) - before) & ((1 << bits) - 1)
        if event is None:
            return delta, 0
        # Minor overflow: re-encrypt the 64 covered lines (§II-B) and
        # refresh their ECC-resident MACs.
        self._overflows.add()
        if self.obs.enabled:
            self.obs.instant(ev.EV_OVERFLOW, ev.TRACK_CTL,
                             leaf=leaf.index, slot=slot,
                             lines=MINORS_PER_BLOCK)
        self.cme.reencrypt_block(self.nvm, leaf, old_major, old_minors)
        base = leaf.index * MINORS_PER_BLOCK * CACHE_LINE_SIZE
        extra = 0
        for covered_slot in range(MINORS_PER_BLOCK):
            covered = base + covered_slot * CACHE_LINE_SIZE
            if covered in self.data_macs:
                self.data_macs[covered] = self.mac.mac(
                    covered, self.nvm.peek_line(covered), leaf.major,
                    leaf.minor_of(covered_slot))
            self.wpq.enqueue(covered, cycle, metadata=False)
            self._data_writes.add()
            extra += OVERFLOW_READ_CYCLES_PER_LINE
        self.hash_engine.charge(MINORS_PER_BLOCK, parallel=True)
        return event.dummy_delta & ((1 << bits) - 1), extra

    def write_data(self, addr: int, data: bytes | None, cycle: int,
                   persist: bool = True) -> WriteOutcome:
        """A data write arriving at the controller: either an explicit
        persist (clwb+sfence — the CPU waits) or a dirty writeback from the
        LLC (the CPU does not wait, but the latency still counts toward
        the Fig 9 write-latency metric)."""
        line = self.amap.line_of(addr)
        self._op_cycle = cycle
        if self.obs.enabled:
            self.obs.set_now(cycle)
        payload = self._payload_for(line, data)
        leaf_index = self.amap.counter_block_of_data(line)
        leaf, fetch_latency = self.fetch_node(0, leaf_index)
        expect_node(leaf, CounterBlock, f"{self.name}: data write")
        delta, overflow_cycles = self._bump_leaf(leaf, line, cycle)
        ciphertext = self.cme.encrypt(line, payload, leaf)
        self.data_macs[line] = self._data_mac(line, ciphertext, leaf)
        self._plaintexts[line] = payload
        scheme_cycles = self._on_leaf_persist(leaf, leaf_index, delta, cycle)
        wpq_stall = self.wpq.enqueue(line, cycle, metadata=False)
        self.nvm.write_line(line, ciphertext)
        self._data_writes.value += 1
        flush_cycles = self.drain_pending(cycle)
        critical = fetch_latency + overflow_cycles + scheme_cycles \
            + flush_cycles
        latency = critical + wpq_stall + self.timing.write_service_cycles
        self._write_latency.add(latency)
        self._verify_latency.add(fetch_latency)
        if self.obs.enabled:
            self.obs.instant(ev.EV_WRITE_OP, ev.TRACK_CTL, addr=line,
                             persist=persist, latency=latency,
                             fetch=fetch_latency, overflow=overflow_cycles,
                             scheme=scheme_cycles, flush=flush_cycles,
                             wpq_stall=wpq_stall)
        cpu_stall = (critical + wpq_stall) if persist else 0
        return WriteOutcome(latency, cpu_stall, critical, wpq_stall,
                            fetch_latency, overflow_cycles, scheme_cycles,
                            flush_cycles)

    def read_data(self, addr: int, cycle: int) -> ReadOutcome:
        """A data read missing all CPU caches: fetch + verify the counter
        chain (needed for the OTP), read the line, decrypt, and check the
        ECC-resident data MAC (speculatively, off the latency path)."""
        line = self.amap.line_of(addr)
        self._op_cycle = cycle
        if self.obs.enabled:
            self.obs.set_now(cycle)
        leaf_index = self.amap.counter_block_of_data(line)
        leaf, fetch_latency = self.fetch_node(0, leaf_index,
                                              speculative=True)
        expect_node(leaf, CounterBlock, f"{self.name}: data read")
        array_latency = self.nvm.read_latency(line)
        ciphertext = self.nvm.read_line(line)
        self._data_reads.value += 1
        stored_mac = self.data_macs.get(line)
        if stored_mac is None:
            # Never-written line: fresh zeros, nothing to decrypt/verify.
            plaintext = ZERO_LINE
        else:
            plaintext = self.cme.decrypt(line, ciphertext, leaf)
            self.hash_engine.charge(1, parallel=True)
            if stored_mac != self._data_mac(line, ciphertext, leaf):
                raise IntegrityError(
                    f"{self.name}: data MAC mismatch at {line:#x} — "
                    "tampered user data detected")
            if self.config.check_data:
                expected = self._plaintexts.get(line)
                if expected is not None and plaintext != expected:
                    raise SimulationError(
                        f"functional mismatch at {line:#x}: decrypted "
                        "plaintext differs from the shadow copy")
        flush_cycles = self.drain_pending(cycle)
        latency = max(array_latency, fetch_latency) + flush_cycles
        self._read_latency.add(latency)
        self._verify_latency.add(fetch_latency)
        if self.obs.enabled:
            self.obs.instant(ev.EV_READ_OP, ev.TRACK_CTL, addr=line,
                             latency=latency, array=array_latency,
                             fetch=fetch_latency, flush=flush_cycles)
        return ReadOutcome(latency, plaintext, fetch_latency,
                           array_latency, flush_cycles)

    def tick(self, cycle: int) -> None:
        """Wall-clock advance from the CPU model: drain the WPQ and let
        schemes complete time-driven work (eager's in-flight root
        updates land here even if no memory access follows)."""
        self.wpq.advance_to(cycle)

    # ==================================================================
    # Crash handling
    # ==================================================================
    def prepare_crash(self) -> None:
        """Power is failing: freeze all time-driven work before any
        ADR/eADR flushing runs (flushes move bytes; they cannot compute)."""
        self._crashing = True

    def crash(self) -> None:
        """Power failure: ADR flushes the WPQ (its contents are already
        durable in this model), eADR additionally flushes dirty cached
        metadata *as-is* — eADR can move bytes but cannot compute HMACs
        (§III-C), so stale MACs land on media stale.  Everything volatile
        is then dropped."""
        self._crashing = True
        self._crashes.add()
        if self.obs.enabled:
            self.obs.instant(ev.EV_CRASH, ev.TRACK_CPU, scheme=self.name,
                             eadr=self.config.eadr)
        self.wpq.flush()
        if self.config.eadr:
            for cached in self.meta_cache.dirty_lines():
                node: TreeNode = cached.payload
                self.store.save(node, counted=False)
        self.meta_cache.drop_all()
        self._victim_buffer.clear()
        self._flush_charge = 0
        self._on_crash()
        self._crashing = False

    # ==================================================================
    # Static overheads (§V-F)
    # ==================================================================
    def onchip_overhead_bytes(self) -> int:
        """Bytes of scheme-specific on-chip non-volatile state (beyond the
        metadata cache every secure design needs)."""
        return ROOT_REGISTER_BYTES

    def stats_dict(self) -> dict[str, float]:
        return self.stats.as_dict()
