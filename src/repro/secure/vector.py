"""Vectorized kernels for the epoch execution engine (`repro.sim.epoch`).

The scalar hot path manipulates one 64 B line at a time through Python
objects: counter images are packed with a 64-iteration shift-or loop,
HMAC/OTP inputs are concatenated per line, pads are generated per line.
The epoch planner instead collects a *window* of trace rows and hands
whole arrays to these kernels — one `numpy` pass packs every counter
image in the window (`pack_counter_images`) and assembles every
branch-seal message (`seal_messages`), which `batch_keyed_hash8` then
turns into memo-ready MACs.  The remaining kernels (OTP/data-MAC
message assembly, pad XOR, media packing) are the same layer applied to
the encryption path; the planner leaves them unused because profiling
showed that path `blake2b`-bound either way (docs/performance.md).

Everything here is **functionally pure** and layout-exact: each kernel
reproduces, byte for byte, the little-endian images and message layouts
of `repro.cme.counters.CounterBlock`, `repro.util.crypto.KeyedMac`
(integer parts as 8-byte LE words) and `repro.util.crypto.make_otp` —
proven per kernel in `tests/secure/test_vector_kernels.py`.  The digest
oracle in `BENCH_perf.json` depends on that equivalence.

The functions named in :data:`HOT_KERNELS` must stay free of per-element
Python loops and dict lookups — reprolint RPL015
(``scalar-path-in-epoch-kernel``) enforces this statically.  The
``batch_*`` boundary helpers are deliberately *not* hot kernels: hashlib
has no batch API, so they run one `blake2b` per row — the win there is
that message assembly already happened vectorized.

`numpy` is optional: :data:`HAVE_NUMPY` gates the epoch engine's
eligibility, and scalar-only environments never call these kernels.
"""

from __future__ import annotations

import hashlib

try:  # pragma: no cover - exercised through both HAVE_NUMPY branches
    import numpy as np
except ImportError:  # pragma: no cover - scalar-only environments
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

#: Kernels that must remain vectorized (no per-element Python loops, no
#: dict lookups) — the declarative hot list reprolint RPL015 checks.
HOT_KERNELS = (
    "pack_counter_images",
    "pack_leaf_media",
    "dummy_counters",
    "apply_bumps",
    "occurrence_index",
    "otp_messages",
    "data_mac_messages",
    "seal_messages",
    "xor_lines",
    "u64_le_bytes",
)

# Leaf layout constants (mirror repro.cme.counters; redeclared here so the
# kernel module has no import-time dependency on the scheme stack).
MINOR_BITS = 6
MINORS_PER_BLOCK = 64
MAJOR_BITS = 64
#: Counter payload bits in a 64 B node image (major + 64 minors).
IMAGE_BITS = MAJOR_BITS + MINORS_PER_BLOCK * MINOR_BITS
IMAGE_BYTES = IMAGE_BITS // 8

if HAVE_NUMPY:
    # ------------------------------------------------------------------
    # Static leaf-image geometry, computed once at import.
    #
    # The 448-bit counter image is 7 little-endian uint64 words: word 0
    # holds the major counter, minor slot ``i`` occupies the 6 bits at
    # image offset ``64 + 6*i``.  Within a word the 6-bit fields are
    # disjoint, so OR-reducing the shifted minors per word reconstructs
    # the image; the four slots whose field crosses a word boundary
    # (offsets 60/62) spill their high bits into the next word.  Each
    # spill targets a distinct word, so a single fancy-indexed OR is
    # race-free.
    # ------------------------------------------------------------------
    _SLOT_BIT = (MAJOR_BITS
                 + MINOR_BITS * np.arange(MINORS_PER_BLOCK, dtype=np.int64))
    _SLOT_WORD = _SLOT_BIT // 64                     # 1 .. 6
    _SLOT_OFF = (_SLOT_BIT % 64).astype(np.uint64)   # shift within word
    _WORD_STARTS = np.flatnonzero(
        np.r_[True, _SLOT_WORD[1:] != _SLOT_WORD[:-1]])
    _SPILL_SLOTS = np.flatnonzero(_SLOT_OFF > np.uint64(64 - MINOR_BITS))
    _SPILL_WORDS = _SLOT_WORD[_SPILL_SLOTS] + 1
    _SPILL_SHIFTS = np.uint64(64) - _SLOT_OFF[_SPILL_SLOTS]
    _U8 = np.uint8
    _U64LE = np.dtype("<u8")


def u64_le_bytes(values):
    """``(k,)`` uint64 -> ``(k, 8)`` uint8 little-endian byte columns."""
    return np.ascontiguousarray(values, dtype=_U64LE).view(_U8).reshape(-1, 8)


def pack_counter_images(majors, minors):
    """Pack leaf counter states into their 56 B on-media images.

    ``majors`` is ``(k,)`` and ``minors`` ``(k, 64)``, both uint64.
    Returns a ``(k, 56)`` uint8 array; row ``r`` equals
    ``CounterBlock(..., majors[r], minors[r])._counter_image()``.
    """
    k = majors.shape[0]
    words = np.zeros((k, IMAGE_BITS // 64), dtype=np.uint64)
    words[:, 0] = majors
    low = minors << _SLOT_OFF  # in-word parts (mod 2**64 drops spill bits)
    words[:, 1:] = np.bitwise_or.reduceat(low, _WORD_STARTS, axis=1)
    words[:, _SPILL_WORDS] |= minors[:, _SPILL_SLOTS] >> _SPILL_SHIFTS
    return np.ascontiguousarray(words, dtype=_U64LE).view(_U8) \
        .reshape(k, IMAGE_BYTES)


def pack_leaf_media(images, hmacs):
    """56 B counter images + 64-bit HMACs -> full 64 B media lines.

    Row ``r`` equals ``CounterBlock.to_bytes()`` for the same state
    (bytes 0..55 image, bytes 56..63 HMAC little-endian).
    """
    k = images.shape[0]
    media = np.empty((k, 64), dtype=_U8)
    media[:, :IMAGE_BYTES] = images
    media[:, IMAGE_BYTES:] = u64_le_bytes(hmacs)
    return media


def dummy_counters(majors, minors, counter_bits):
    """Vectorized ``CounterBlock.dummy_counter``:
    ``(major * 64 + sum(minors)) mod 2**counter_bits``.

    Exact in uint64: ``2**counter_bits`` divides ``2**64``, so the
    wraparound commutes with the final mask.
    """
    mask = np.uint64((1 << counter_bits) - 1)
    return (majors * np.uint64(MINORS_PER_BLOCK)
            + minors.sum(axis=1, dtype=np.uint64)) & mask


def apply_bumps(minors, rows, slots):
    """Apply one minor-counter bump per (row, slot) pair in place —
    duplicate pairs accumulate (``np.add.at`` semantics)."""
    np.add.at(minors, (rows, slots), 1)
    return minors


def occurrence_index(keys):
    """Per-position count of *earlier* occurrences of the same key.

    For the window's persist rows keyed by ``leaf*64 + slot``, row ``r``'s
    post-bump minor is ``base_minor + occurrence_index(keys)[r] + 1`` —
    the sequential counter evolution, recovered without a Python loop.
    """
    n = keys.shape[0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    pos = np.arange(n, dtype=np.int64)
    is_start = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    run_start = np.maximum.accumulate(np.where(is_start, pos, 0))
    occ = np.empty(n, dtype=np.int64)
    occ[order] = pos - run_start
    return occ


def otp_messages(lines, majors, minors):
    """Assemble `make_otp` seed messages: ``line(8 LE) || major(8 LE) ||
    minor(2 LE)`` -> ``(k, 18)`` uint8."""
    k = lines.shape[0]
    msg = np.zeros((k, 18), dtype=_U8)
    msg[:, 0:8] = u64_le_bytes(lines)
    msg[:, 8:16] = u64_le_bytes(majors)
    msg[:, 16] = (minors & np.uint64(0xFF)).astype(_U8)
    msg[:, 17] = (minors >> np.uint64(8)).astype(_U8)
    return msg


def data_mac_messages(lines, ciphertexts, majors, minors):
    """Assemble the data-MAC input ``KeyedMac.mac(line, ct, major, minor)``
    hashes: ``line(8 LE) || ct(64) || major(8 LE) || minor(8 LE)`` ->
    ``(k, 88)`` uint8."""
    k = lines.shape[0]
    msg = np.empty((k, 88), dtype=_U8)
    msg[:, 0:8] = u64_le_bytes(lines)
    msg[:, 8:72] = ciphertexts
    msg[:, 72:80] = u64_le_bytes(majors)
    msg[:, 80:88] = u64_le_bytes(minors)
    return msg


def seal_messages(node_addrs, images, parent_counters):
    """Assemble node-seal MAC inputs ``mac_uncached(addr, image, parent)``:
    ``addr(8 LE) || image(56) || parent(8 LE)`` -> ``(k, 72)`` uint8."""
    k = node_addrs.shape[0]
    msg = np.empty((k, 72), dtype=_U8)
    msg[:, 0:8] = u64_le_bytes(node_addrs)
    msg[:, 8:8 + IMAGE_BYTES] = images
    msg[:, 8 + IMAGE_BYTES:] = u64_le_bytes(parent_counters)
    return msg


def xor_lines(a, b):
    """Bulk CME step: XOR ``(k, 64)`` payloads against ``(k, 64)`` pads."""
    return np.bitwise_xor(a, b)


# ----------------------------------------------------------------------
# Hash boundary: hashlib has no batch API, so these run one blake2b per
# row over the vectorized message arrays.  Intentionally NOT in
# HOT_KERNELS — the per-row loop is the irreducible residue.
# ----------------------------------------------------------------------
def batch_keyed_hash8(key, messages):
    """One keyed 64-bit MAC per message row (`KeyedMac.mac_uncached`
    layout: the caller pre-serialised the parts).  Returns a list of
    ints, little-endian decoded like the scalar path."""
    blake2b = hashlib.blake2b
    from_bytes = int.from_bytes
    rows = memoryview(messages.tobytes())
    width = messages.shape[1]
    return [
        from_bytes(blake2b(rows[i * width:(i + 1) * width],
                           key=key, digest_size=8).digest(), "little")
        for i in range(messages.shape[0])
    ]


def batch_otps(derived_key, messages):
    """One 64 B one-time pad per 18-byte seed message, reproducing
    `repro.util.crypto.make_otp` byte for byte (the caller passes the
    *derived* key).  Returns a ``(k, 64)`` uint8 array."""
    blake2b = hashlib.blake2b
    rows = memoryview(messages.tobytes())
    k = messages.shape[0]
    width = messages.shape[1]
    out = np.empty((k, 64), dtype=np.uint8)
    for i in range(k):
        seed = blake2b(rows[i * width:(i + 1) * width],
                       key=derived_key, digest_size=32).digest()
        out[i, :32] = np.frombuffer(
            blake2b(seed + b"\x00", digest_size=32).digest(), dtype=np.uint8)
        out[i, 32:] = np.frombuffer(
            blake2b(seed + b"\x01", digest_size=32).digest(), dtype=np.uint8)
    return out
