"""Secure memory controllers — one per evaluated update scheme (§V-A).

Use :func:`make_controller` (or :data:`SCHEMES`) to instantiate by name:

========== ============================================== ===============
name       scheme                                          root consistent
========== ============================================== ===============
baseline   CME only, no integrity                          n/a
lazy       update parent on persist, root trails           no
eager      propagate to root, 40-cycle crash window        no
plp        atomic whole-branch persist (PLP-on-SIT)        yes
bmf-ideal  persistent roots in unbounded nvMC              yes
scue       shortcut root update + counter-summing (ours)   yes
========== ============================================== ===============
"""

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.secure.base import (
    ReadOutcome,
    RecoveryReport,
    SecureMemoryController,
    WriteOutcome,
)
from repro.secure.baseline import BaselineController
from repro.secure.bmf import BMFIdealController
from repro.secure.bmt_eager import BMTEagerController
from repro.secure.eager import EagerController
from repro.secure.lazy import LazyController
from repro.secure.plp import PLPController
from repro.secure.roots import RootRegister
from repro.secure.scue import SCUEController

if TYPE_CHECKING:  # avoid the secure <-> sim layering cycle at runtime
    from repro.sim.config import SystemConfig

SCHEMES: dict[str, type[SecureMemoryController]] = {
    BaselineController.name: BaselineController,
    LazyController.name: LazyController,
    EagerController.name: EagerController,
    PLPController.name: PLPController,
    BMFIdealController.name: BMFIdealController,
    SCUEController.name: SCUEController,
    BMTEagerController.name: BMTEagerController,
}


def make_controller(config: "SystemConfig",
                    recorder=None) -> SecureMemoryController:
    """Build the controller named by ``config.scheme``.  ``recorder`` is
    an optional :class:`repro.obs.TraceRecorder`; the default is the
    zero-cost null recorder."""
    try:
        cls = SCHEMES[config.scheme]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {config.scheme!r}; "
            f"choose from {sorted(SCHEMES)}") from None
    return cls(config, recorder=recorder)


__all__ = [
    "SCHEMES",
    "make_controller",
    "SecureMemoryController",
    "BaselineController",
    "LazyController",
    "EagerController",
    "PLPController",
    "BMFIdealController",
    "SCUEController",
    "RootRegister",
    "ReadOutcome",
    "WriteOutcome",
    "RecoveryReport",
]
