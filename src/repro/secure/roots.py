"""On-chip non-volatile root registers.

The root of the SIT is ``arity`` counters living in a non-volatile
register inside the trusted chip (paper §III-A): it survives crashes and
cannot be tampered with.  SCUE keeps **two** such registers (§IV-A2):

* ``Running_root`` — updated lazily (when a top-level tree node is flushed)
  and used to verify top-level node fetches during normal operation;
* ``Recovery_root`` — updated *instantaneously* on every leaf persist by
  the shortcut path, and compared against the counter-summing
  reconstruction after a reboot.

Other schemes use a single register.  Counter width follows the tree
layout (56-bit for the paper's 8-ary SIT; narrower for VAULT-style wide
nodes) so root arithmetic and counter-summing stay in the same modular
ring.  Crash simulation never clears these objects — that is the whole
point of them being non-volatile registers — but
:meth:`snapshot`/:meth:`restore` let tests explore hypotheticals.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.address import COUNTER_BITS_FOR_ARITY, TREE_ARITY

ROOT_REGISTER_BYTES = 64


class RootRegister:
    """``slots`` counters in trusted non-volatile on-chip storage."""

    def __init__(self, name: str, slots: int = TREE_ARITY,
                 counter_bits: int = COUNTER_BITS_FOR_ARITY[TREE_ARITY]
                 ) -> None:
        if slots <= 0:
            raise ConfigError("root register needs at least one slot")
        if counter_bits <= 0:
            raise ConfigError("counter width must be positive")
        self.name = name
        self.slots = slots
        self.counter_bits = counter_bits
        self._mask = (1 << counter_bits) - 1
        self._counters = [0] * slots

    @property
    def counters(self) -> list[int]:
        """A defensive copy of the counter values."""
        return list(self._counters)

    def counter(self, slot: int) -> int:
        self._check(slot)
        return self._counters[slot]

    def add(self, slot: int, delta: int = 1) -> None:
        """The shortcut update: bump one counter by ``delta`` (modular, so
        overflow re-encryption deltas compose exactly)."""
        self._check(slot)
        self._counters[slot] = (self._counters[slot] + delta) & self._mask

    def set(self, slot: int, value: int) -> None:
        """Overwrite one counter (Running_root := top-node dummy)."""
        self._check(slot)
        self._counters[slot] = value & self._mask

    def matches(self, counters: list[int]) -> bool:
        """Compare against externally reconstructed root counters."""
        if len(counters) != self.slots:
            raise ConfigError(
                f"root comparison needs {self.slots} counters")
        return all((c & self._mask) == r
                   for c, r in zip(counters, self._counters))

    def snapshot(self) -> list[int]:
        return list(self._counters)

    def restore(self, values: list[int]) -> None:
        if len(values) != self.slots:
            raise ConfigError(f"root restore needs {self.slots} counters")
        self._counters = [v & self._mask for v in values]

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.slots:
            raise ConfigError(f"root slot {slot} out of range")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RootRegister({self.name}, {self._counters})"
