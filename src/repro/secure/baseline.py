"""Insecure baseline (paper §V-A): counter-mode encryption only.

Data are encrypted, but there is no integrity tree, no HMAC work, no
verification on fetch — the normalisation denominator for Figs 9-12.
Counter blocks are still cached and written back (CME needs them durable
eventually), so the baseline sees realistic counter traffic without any
of the tree overheads.
"""

from __future__ import annotations

from repro.cme.counters import CounterBlock
from repro.obs import events as ev
from repro.secure.base import RecoveryReport, SecureMemoryController
from repro.tree.store import TreeNode


class BaselineController(SecureMemoryController):
    """CME-only memory controller without integrity verification."""

    name = "baseline"
    crash_consistent_root = False

    # ------------------------------------------------------------------
    # No tree: fetches read the counter block directly, unverified.
    # ------------------------------------------------------------------
    def _fetch_chain(self, level: int, index: int) -> tuple[TreeNode, int, int]:
        line = self.store.node_addr(level, index)
        hit = self.meta_cache.lookup(line)
        if hit is not None:
            return hit.payload, 0, 0
        latency = self.nvm.read_latency(line)
        node = self.store.load(level, index)
        self._meta_reads.add()
        self._install(line, node, dirty=False)
        # Zero nodes fetched *for verification*: no hash charge follows.
        return node, latency, 0

    # ------------------------------------------------------------------
    def _on_leaf_persist(self, leaf: CounterBlock, leaf_index: int,
                         dummy_delta: int, cycle: int) -> int:
        if self.config.leaf_write_through:
            # Keep counters durable with data (same persistence contract
            # as the secure schemes) but with zero integrity work.
            stall = self._persist_node(leaf, cycle)
            if self.obs.enabled:
                self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                                 scheme=self.name, leaf=leaf_index,
                                 cycles=stall)
            return stall
        # Otherwise the dirty cached block is flushed on eviction.
        return 0

    def _flush_node(self, node: TreeNode, cycle: int) -> int:
        stall = self._persist_node(node, cycle)
        if self.obs.enabled:
            level, index = self.store.coords_of(node)
            self.obs.instant(ev.EV_META_FLUSH, ev.TRACK_CTL,
                             scheme=self.name, level=level, index=index,
                             cycles=stall)
        return stall

    def recover(self) -> RecoveryReport:
        """Nothing to verify: the baseline cannot detect anything, which is
        exactly why it is insecure."""
        return RecoveryReport(
            scheme=self.name, success=True, root_matched=True,
            detail="insecure baseline: no integrity verification performed")

    def onchip_overhead_bytes(self) -> int:
        return 0
