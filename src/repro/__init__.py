"""SCUE reproduction: root crash consistency for SGX-style integrity
trees in secure non-volatile memory (Huang & Hua, HPCA 2023).

Top-level convenience exports; see README.md for the tour.

>>> from repro import SystemConfig, System, make_workload
>>> config = SystemConfig(scheme="scue", data_capacity=16 * 1024 * 1024)
>>> system = System(config)
>>> system.run(make_workload("array", config.data_capacity, 100).trace())
>>> system.crash()
>>> system.recover().success
True
"""

from repro.errors import (
    ConfigError,
    IntegrityError,
    RecoveryError,
    ReproError,
    RootMismatchError,
)
from repro.secure import SCHEMES, make_controller
from repro.secure.base import RecoveryReport
from repro.sim import RunResult, System, SystemConfig, run_workload
from repro.workloads import ALL_WORKLOADS, make_workload

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "IntegrityError",
    "RecoveryError",
    "ReproError",
    "RootMismatchError",
    "SCHEMES",
    "make_controller",
    "RecoveryReport",
    "RunResult",
    "System",
    "SystemConfig",
    "run_workload",
    "ALL_WORKLOADS",
    "make_workload",
    "__version__",
]
