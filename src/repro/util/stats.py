"""Lightweight statistics plumbing for the simulator.

Every component (caches, WPQ, NVM, schemes, CPU) exposes a
:class:`StatGroup` of named counters and means; the driver collects them
into a flat report after a run.  Keeping statistics separate from model
state makes it trivial to reset between measurement windows (warm-up vs.
measured region, mirroring the paper's 10M-instruction warm-up).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.obs.histogram import LatencyHistogram


@dataclass
class StatCounter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass
class WeightedMean:
    """Accumulates a mean of per-event values (e.g. per-write latency).

    Tracks count, sum, min and max so reports can show distribution edges
    without storing every sample.
    """

    name: str
    count: int = 0
    total: float = 0.0
    # None (not +/-inf sentinels) when empty, so exports stay JSON-clean.
    minimum: float | None = None
    maximum: float | None = None

    def add(self, value: float, weight: int = 1) -> None:
        self.count += weight
        self.total += value * weight
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None


class StatGroup:
    """A named bag of counters and means with hierarchical reporting.

    Components create their counters once at construction::

        self.stats = StatGroup("l2cache")
        self.hits = self.stats.counter("hits")

    and the driver flattens everything with :meth:`as_dict`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: dict[str, StatCounter] = {}
        self._means: dict[str, WeightedMean] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._children: dict[str, StatGroup] = {}

    def counter(self, name: str) -> StatCounter:
        """Create (or fetch) a counter named ``name`` in this group."""
        if name not in self._counters:
            self._counters[name] = StatCounter(name)
        return self._counters[name]

    def mean(self, name: str) -> WeightedMean:
        """Create (or fetch) a weighted mean named ``name``."""
        if name not in self._means:
            self._means[name] = WeightedMean(name)
        return self._means[name]

    def histogram(self, name: str) -> LatencyHistogram:
        """Create (or fetch) a latency histogram named ``name``."""
        if name not in self._histograms:
            self._histograms[name] = LatencyHistogram(name)
        return self._histograms[name]

    def child(self, name: str) -> "StatGroup":
        """Create (or fetch) a nested group, e.g. per-level cache stats."""
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    def attach(self, group: "StatGroup") -> "StatGroup":
        """Attach an externally created group as a child."""
        self._children[group.name] = group
        return group

    def reset(self) -> None:
        """Zero every statistic in this group and all children (used at the
        warm-up/measurement boundary)."""
        for counter in self._counters.values():
            counter.reset()
        for mean in self._means.values():
            mean.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for childgroup in self._children.values():
            childgroup.reset()

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Flatten to ``{"group.counter": value, ...}``."""
        path = f"{prefix}{self.name}."
        out: dict[str, float] = {}
        for counter in self._counters.values():
            out[path + counter.name] = counter.value
        for mean in self._means.values():
            out[path + mean.name + ".mean"] = mean.mean
            out[path + mean.name + ".count"] = mean.count
        for histogram in self._histograms.values():
            out[path + histogram.name + ".count"] = histogram.count
            out[path + histogram.name + ".mean"] = histogram.mean
            for pct in ("p50", "p95", "p99"):
                value = getattr(histogram, pct)
                out[path + histogram.name + f".{pct}"] = \
                    float(value) if value is not None else 0.0
            maximum = histogram.maximum
            out[path + histogram.name + ".max"] = \
                float(maximum) if maximum is not None else 0.0
        for childgroup in self._children.values():
            out.update(childgroup.as_dict(path))
        return out

    def histograms(self, prefix: str = "") -> dict[str, LatencyHistogram]:
        """Flatten to ``{"group.metric": LatencyHistogram, ...}``."""
        path = f"{prefix}{self.name}."
        out: dict[str, LatencyHistogram] = {}
        for histogram in self._histograms.values():
            out[path + histogram.name] = histogram
        for childgroup in self._children.values():
            out.update(childgroup.histograms(path))
        return out

    def __iter__(self) -> Iterator[StatCounter]:
        return iter(self._counters.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatGroup({self.name!r}, {len(self._counters)} counters)"
