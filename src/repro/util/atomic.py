"""Crash-consistent file publication: write-temp -> fsync -> replace.

The repo's crash-consistency claim extends to its own artifacts
(docs/analysis.md, RPL013): manifests, cache entries, report bundles
and discovery files are read by concurrent processes and must never be
observable half-written — the torn-root problem of the paper's §III-B
at file granularity.  Every writer of a *final* path routes through
this module:

* the payload is staged in a ``.tmp`` file created in the destination
  directory (same filesystem, so the final rename cannot degrade to a
  copy),
* the staged file is flushed and ``os.fsync``'d — the rename must not
  be reordered ahead of the data reaching the device, exactly the
  leaf-before-root ordering obligation the tree schemes enforce,
* ``os.replace`` publishes it atomically, and
* the directory entry is fsynced best-effort so the publication itself
  survives power loss.

Readers therefore see either the previous complete version or the new
complete version, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import suppress
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_bytes", "fsync_dir"]


def fsync_dir(directory: str | Path) -> None:
    """Best-effort durability for a directory-entry change (rename or
    unlink).  Filesystems that refuse ``O_RDONLY`` opens or fsync on
    directories lose durability, not atomicity, so errors are
    swallowed."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` atomically and durably."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=path.name + ".", suffix=".tmp")
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        with suppress(OSError):
            os.unlink(tmp)
        raise
    fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> None:
    """Publish ``text`` at ``path`` atomically and durably."""
    atomic_write_bytes(path, text.encode(encoding))
