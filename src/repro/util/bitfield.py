"""Bit-level packing helpers for security-metadata layouts.

Secure-memory metadata squeezes many narrow counters into one 64-byte
memory line: an SIT node holds eight 56-bit counters plus a 64-bit HMAC
(8 x 56 + 64 = 512 bits exactly), and a CME counter block holds one 64-bit
major counter plus sixty-four 7-bit minor counters (64 + 64 x 7 = 512 bits).
This module provides the packing/unpacking used to serialise those layouts
to the byte image stored in the simulated NVM, so that crash truncation and
attack injection operate on realistic on-media images.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigError


class BitPacker:
    """Accumulates fixed-width unsigned fields into a little-endian bit
    stream and serialises them to bytes.

    Fields are appended most-significant-bit-last within the stream, i.e.
    the first field occupies the lowest bit positions of the resulting
    integer.  The reverse operation is provided by :class:`BitUnpacker`.
    """

    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits appended so far."""
        return self._bits

    def add(self, value: int, width: int) -> "BitPacker":
        """Append ``value`` as a ``width``-bit unsigned field.

        Raises :class:`ConfigError` if the value does not fit.
        """
        if width <= 0:
            raise ConfigError(f"field width must be positive, got {width}")
        if value < 0 or value >> width:
            raise ConfigError(f"value {value} does not fit in {width} bits")
        self._value |= value << self._bits
        self._bits += width
        return self

    def to_bytes(self, length: int | None = None) -> bytes:
        """Serialise the accumulated fields.

        ``length`` defaults to the minimal whole-byte size; if given, the
        accumulated bits must fit exactly or within it (zero padded).
        """
        needed = (self._bits + 7) // 8
        if length is None:
            length = needed
        if length < needed:
            raise ConfigError(
                f"{self._bits} bits do not fit in {length} bytes")
        return self._value.to_bytes(length, "little")


class BitUnpacker:
    """Reads fixed-width unsigned fields back out of a byte image produced
    by :class:`BitPacker`, in the same order they were appended."""

    def __init__(self, data: bytes) -> None:
        self._value = int.from_bytes(data, "little")
        self._offset = 0
        self._limit = len(data) * 8

    def take(self, width: int) -> int:
        """Read the next ``width``-bit field."""
        if width <= 0:
            raise ConfigError(f"field width must be positive, got {width}")
        if self._offset + width > self._limit:
            raise ConfigError("bit stream exhausted")
        field = (self._value >> self._offset) & ((1 << width) - 1)
        self._offset += width
        return field

    def take_many(self, width: int, count: int) -> list[int]:
        """Read ``count`` consecutive fields of ``width`` bits each."""
        return [self.take(width) for _ in range(count)]


def pack_counters(counters: Sequence[int], width: int,
                  line_size: int = 64) -> bytes:
    """Pack equal-width counters into a ``line_size``-byte image.

    Used for the counter payload of SIT nodes (eight 56-bit counters) and
    similar layouts.  Remaining bits are zero.
    """
    packer = BitPacker()
    for counter in counters:
        packer.add(counter, width)
    return packer.to_bytes(line_size)


def unpack_counters(data: bytes, width: int, count: int) -> list[int]:
    """Inverse of :func:`pack_counters`."""
    return BitUnpacker(data).take_many(width, count)


def checked_sum(values: Iterable[int], width: int) -> int:
    """Sum ``values`` modulo ``2**width``.

    The paper's counter-summing invariant (parent counter == sum of child
    counters) holds in modular arithmetic when counters are stored in
    fixed-width fields; all dummy-counter computations go through this
    helper so node code and recovery code can never disagree on wrap
    behaviour.
    """
    return sum(values) & ((1 << width) - 1)
