"""Utility helpers shared across the simulator: bit-level packing for
counter layouts, the keyed-MAC primitive used for HMAC fields, and
statistics counters."""

from repro.util.bitfield import BitPacker, pack_counters, unpack_counters
from repro.util.crypto import KeyedMac, make_otp
from repro.util.stats import StatCounter, StatGroup, WeightedMean

__all__ = [
    "BitPacker",
    "pack_counters",
    "unpack_counters",
    "KeyedMac",
    "make_otp",
    "StatCounter",
    "StatGroup",
    "WeightedMean",
]
