"""Utility helpers shared across the simulator: bit-level packing for
counter layouts, the keyed-MAC primitive used for HMAC fields,
statistics counters, and crash-consistent file publication."""

from repro.util.atomic import atomic_write_bytes, atomic_write_text, \
    fsync_dir
from repro.util.bitfield import BitPacker, pack_counters, unpack_counters
from repro.util.crypto import KeyedMac, make_otp
from repro.util.stats import StatCounter, StatGroup, WeightedMean

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "BitPacker",
    "pack_counters",
    "unpack_counters",
    "KeyedMac",
    "make_otp",
    "StatCounter",
    "StatGroup",
    "WeightedMean",
]
