"""Cryptographic primitives for the simulated secure memory controller.

The paper's hardware uses AES-CTR for counter-mode encryption and a
SHA-class keyed HMAC for integrity.  Cryptographic *strength* is irrelevant
to the mechanisms under evaluation (update schemes, crash consistency,
recovery); what matters is that MACs are keyed, deterministic, and
collision-resistant enough that a tampered input practically never matches a
stored MAC.  We therefore use ``blake2b`` (keyed, fast, in the standard
library) truncated to the field widths the paper models: 64-bit HMACs in
tree nodes, and 64-byte one-time pads for CME.
"""

from __future__ import annotations

import hashlib

MAC_BITS = 64
MAC_BYTES = MAC_BITS // 8
OTP_BYTES = 64


class KeyedMac:
    """A keyed 64-bit MAC, the simulator's stand-in for the hardware HMAC
    unit.

    The secret key lives inside the trusted on-chip domain; attackers (and
    attack-injection code) never see it, which is exactly why roll-forward
    attacks are detected (§IV-B2): without the key an attacker cannot forge
    a MAC over modified counters.
    """

    def __init__(self, key: bytes = b"repro-secret-key") -> None:
        if not key:
            raise ValueError("MAC key must be non-empty")
        # blake2b keys are capped at 64 bytes.
        self._key = hashlib.blake2b(key, digest_size=32).digest()

    def mac(self, *parts: bytes | int) -> int:
        """Compute the 64-bit MAC over the concatenation of ``parts``.

        Integer parts are serialised as 8-byte little-endian words, which is
        how node addresses and parent counters enter the hash in our node
        layouts.  Returns the MAC as an unsigned 64-bit integer (the form
        stored in node images).
        """
        h = hashlib.blake2b(key=self._key, digest_size=MAC_BYTES)
        for part in parts:
            if isinstance(part, int):
                h.update(part.to_bytes(8, "little", signed=False))
            else:
                h.update(part)
        return int.from_bytes(h.digest(), "little")

    def mac_bytes(self, *parts: bytes | int) -> bytes:
        """Like :meth:`mac` but returns the raw 8-byte digest."""
        return self.mac(*parts).to_bytes(MAC_BYTES, "little")


def make_otp(key: bytes, line_addr: int, major: int, minor: int) -> bytes:
    """Generate the 64-byte one-time pad for counter-mode encryption.

    Hardware computes AES_k(line_address || major || minor) blocks; we
    derive an equivalent deterministic pad from the same inputs.  The CME
    security argument only needs pads to be unique per (address, counter)
    pair and unpredictable without the key — both hold here.
    """
    h = hashlib.blake2b(key=hashlib.blake2b(key, digest_size=32).digest(),
                        digest_size=32)
    h.update(line_addr.to_bytes(8, "little"))
    h.update(major.to_bytes(8, "little"))
    h.update(minor.to_bytes(2, "little"))
    seed = h.digest()
    # Expand 32 -> 64 bytes with two counter-indexed blocks.
    out = b"".join(
        hashlib.blake2b(seed + bytes([i]), digest_size=32).digest()
        for i in range(2)
    )
    return out[:OTP_BYTES]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (the CME encrypt/decrypt step)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")) \
        .to_bytes(len(a), "little")
