"""Cryptographic primitives for the simulated secure memory controller.

The paper's hardware uses AES-CTR for counter-mode encryption and a
SHA-class keyed HMAC for integrity.  Cryptographic *strength* is irrelevant
to the mechanisms under evaluation (update schemes, crash consistency,
recovery); what matters is that MACs are keyed, deterministic, and
collision-resistant enough that a tampered input practically never matches a
stored MAC.  We therefore use ``blake2b`` (keyed, fast, in the standard
library) truncated to the field widths the paper models: 64-bit HMACs in
tree nodes, and 64-byte one-time pads for CME.
"""

from __future__ import annotations

import hashlib

MAC_BITS = 64
MAC_BYTES = MAC_BITS // 8
OTP_BYTES = 64


class KeyedMac:
    """A keyed 64-bit MAC, the simulator's stand-in for the hardware HMAC
    unit.

    The secret key lives inside the trusted on-chip domain; attackers (and
    attack-injection code) never see it, which is exactly why roll-forward
    attacks are detected (§IV-B2): without the key an attacker cannot forge
    a MAC over modified counters.
    """

    #: Entry cap on the content-keyed memo; the table is dropped wholesale
    #: when full (simple, and refill cost is one recomputation per entry).
    MEMO_LIMIT = 1 << 17

    def __init__(self, key: bytes = b"repro-secret-key") -> None:
        if not key:
            raise ValueError("MAC key must be non-empty")
        # blake2b keys are capped at 64 bytes.
        self._key = hashlib.blake2b(key, digest_size=32).digest()
        #: Content-keyed digest memo.  A MAC is a pure function of the key
        #: and the input parts, so caching by the *parts themselves* is
        #: sound: any mutation of the hashed content produces a different
        #: memo key and recomputes — a tampered node can never inherit a
        #: cached MAC (docs/performance.md).  Node code also parks
        #: structured keys here (tagged tuples) to skip image packing.
        self.memo: dict[tuple, int] = {}

    def mac(self, *parts: bytes | int) -> int:
        """Compute the 64-bit MAC over the concatenation of ``parts``.

        Integer parts are serialised as 8-byte little-endian words, which is
        how node addresses and parent counters enter the hash in our node
        layouts.  Returns the MAC as an unsigned 64-bit integer (the form
        stored in node images).
        """
        memo = self.memo
        value = memo.get(parts)
        if value is not None:
            return value
        value = self.mac_uncached(*parts)
        if len(memo) >= self.MEMO_LIMIT:
            memo.clear()
        memo[parts] = value
        return value

    def mac_uncached(self, *parts: bytes | int) -> int:
        """:meth:`mac` without the memo — for callers (node HMACs) that
        keep their own content-keyed memo and would otherwise populate
        both tables on every miss."""
        h = hashlib.blake2b(key=self._key, digest_size=MAC_BYTES)
        for part in parts:
            if isinstance(part, int):
                h.update(part.to_bytes(8, "little", signed=False))
            else:
                h.update(part)
        return int.from_bytes(h.digest(), "little")

    def mac_bytes(self, *parts: bytes | int) -> bytes:
        """Like :meth:`mac` but returns the raw 8-byte digest."""
        return self.mac(*parts).to_bytes(MAC_BYTES, "little")


#: Derived-key cache for :func:`make_otp`: one blake2b per distinct user
#: key instead of one per pad.  Keys are config constants, so this stays
#: a handful of entries for the life of the process.
_DERIVED_KEYS: dict[bytes, bytes] = {}


def make_otp(key: bytes, line_addr: int, major: int, minor: int) -> bytes:
    """Generate the 64-byte one-time pad for counter-mode encryption.

    Hardware computes AES_k(line_address || major || minor) blocks; we
    derive an equivalent deterministic pad from the same inputs.  The CME
    security argument only needs pads to be unique per (address, counter)
    pair and unpredictable without the key — both hold here.
    """
    derived = _DERIVED_KEYS.get(key)
    if derived is None:
        derived = hashlib.blake2b(key, digest_size=32).digest()
        _DERIVED_KEYS[key] = derived
    h = hashlib.blake2b(key=derived, digest_size=32)
    h.update(line_addr.to_bytes(8, "little"))
    h.update(major.to_bytes(8, "little"))
    h.update(minor.to_bytes(2, "little"))
    seed = h.digest()
    # Expand 32 -> 64 bytes (== OTP_BYTES) with two counter-indexed blocks.
    return hashlib.blake2b(seed + b"\x00", digest_size=32).digest() \
        + hashlib.blake2b(seed + b"\x01", digest_size=32).digest()


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (the CME encrypt/decrypt step)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")) \
        .to_bytes(len(a), "little")
