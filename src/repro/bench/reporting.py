"""Plain-text rendering of benchmark results — the rows/series the paper
reports, printed so a terminal diff against the published figures is a
one-glance job."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_ratio_table(title: str,
                       table: Mapping[str, Mapping[str, float]],
                       paper_average: Mapping[str, float] | None = None,
                       baseline_note: str = "normalized to Baseline"
                       ) -> str:
    """Render ``{workload: {scheme: ratio}}`` (as produced by
    :meth:`MatrixResult.ratio_table`) with an optional paper-reference
    footer."""
    schemes = list(next(iter(table.values())).keys())
    width = max(10, *(len(s) for s in schemes))
    name_width = max(10, *(len(w) for w in table))
    lines = [f"{title} ({baseline_note})",
             f"{'workload':<{name_width}} "
             + " ".join(f"{s:>{width}}" for s in schemes)]
    for workload, row in table.items():
        if workload == "geomean":
            continue
        lines.append(f"{workload:<{name_width}} "
                     + " ".join(f"{row[s]:>{width}.2f}" for s in schemes))
    geo = table.get("geomean")
    if geo:
        lines.append("-" * len(lines[1]))
        lines.append(f"{'geomean':<{name_width}} "
                     + " ".join(f"{geo[s]:>{width}.2f}" for s in schemes))
    if paper_average:
        lines.append(f"{'paper avg':<{name_width}} "
                     + " ".join(
                         f"{paper_average.get(s, float('nan')):>{width}.2f}"
                         for s in schemes))
    return "\n".join(lines)


def format_simple_table(title: str, headers: Sequence[str],
                        rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned table from header + row sequences."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = [title,
             " ".join(f"{h:>{w}}" for h, w in zip(headers, widths)),
             " ".join("-" * w for w in widths)]
    for row in cells:
        lines.append(" ".join(f"{c:>{w}}" for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by the report
    bundle's ``STATUS.md`` manifest)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = ["| " + " | ".join(f"{h:<{w}}" for h, w in
                               zip(headers, widths)) + " |",
             "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    for row in cells:
        lines.append("| " + " | ".join(f"{c:<{w}}" for c, w in
                                       zip(row, widths)) + " |")
    return "\n".join(lines)


def human_bytes(n: int | None) -> str:
    if n is None:
        return "-"
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.0f}{unit}" if unit == "B" \
                else f"{value:.2f}{unit}"
        value /= 1024
    return f"{value:.2f}GB"
