"""Export figure results as JSON/CSV for external plotting.

The figure drivers return dataclasses; :func:`to_jsonable` flattens them
(dropping heavyweight embedded objects like the raw run matrix) so
``repro-sim figures fig9 --json out.json`` produces plot-ready data, and
:func:`ratio_table_to_csv` renders the workload x scheme tables the
paper's bar charts are drawn from.
"""

from __future__ import annotations

import dataclasses
import enum
import io
import json
from pathlib import Path
from typing import Any

#: Embedded fields that are execution artifacts, not figure data.
_SKIP_FIELDS = {"matrix"}


def to_jsonable(value: Any) -> Any:
    """Recursively convert figure dataclasses to JSON-compatible data.

    Handles every shape a ``fig*`` result can embed: nested dataclasses
    (also inside dicts/sequences), enums (their ``value``), ``Path``
    (string form), ``bytes`` (hex), and non-string dict keys (enum keys
    collapse to their value before the string coercion, so
    ``AccessType.READ`` keys export as ``"read"``, not
    ``"AccessType.READ"``).  Opaque objects fall back to ``str``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if field.name not in _SKIP_FIELDS
        }
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        key = key.value
    return key if isinstance(key, str) else str(key)


def save_json(value: Any, path: str | Path) -> None:
    """Write a figure result to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(to_jsonable(value), indent=2,
                                     sort_keys=True) + "\n")


def ratio_table_to_csv(table: dict[str, dict[str, float]]) -> str:
    """Render a ``{workload: {scheme: ratio}}`` table as CSV text."""
    if not table:
        return ""
    schemes = list(next(iter(table.values())))
    out = io.StringIO()
    out.write("workload," + ",".join(schemes) + "\n")
    for workload, row in table.items():
        out.write(workload + ","
                  + ",".join(f"{row[s]:.4f}" for s in schemes) + "\n")
    return out.getvalue()


def save_csv(table: dict[str, dict[str, float]], path: str | Path) -> None:
    Path(path).write_text(ratio_table_to_csv(table))
