"""Benchmark harness: the per-figure experiment drivers that regenerate
the paper's evaluation (Figs 9-13, Table I, §V-E, §V-F).

Each ``figN`` function returns a structured result object that both the
``benchmarks/`` pytest-benchmark suite and the runnable examples consume;
:mod:`repro.bench.reporting` renders them as the paper-style tables.
"""

from repro.bench.harness import (
    BenchScale,
    MatrixResult,
    geomean,
    run_matrix,
)
from repro.bench.figures import (
    fig5_crash_window,
    fig9_write_latency,
    fig10_execution_time,
    fig11_hash_sweep_write_latency,
    fig12_hash_sweep_execution_time,
    fig13_recovery_time,
    sec5e_memory_accesses,
    table1_attack_detection,
)
from repro.bench.overheads import sec5f_space_overheads
from repro.bench.reporting import format_ratio_table, format_simple_table

__all__ = [
    "BenchScale",
    "MatrixResult",
    "geomean",
    "run_matrix",
    "fig5_crash_window",
    "fig9_write_latency",
    "fig10_execution_time",
    "fig11_hash_sweep_write_latency",
    "fig12_hash_sweep_execution_time",
    "fig13_recovery_time",
    "sec5e_memory_accesses",
    "table1_attack_detection",
    "sec5f_space_overheads",
    "format_ratio_table",
    "format_simple_table",
]
