"""§V-F: space and hardware overheads.

Static accounting — no simulation needed: instantiate each controller at
the paper's 16 GB geometry (construction is cheap; the NVM store is
sparse) and ask it for its scheme-specific on-chip non-volatile state.
The paper's published figures ride along for the side-by-side table; note
the BMF-ideal discrepancy discussed in EXPERIMENTS.md (the paper quotes
256 MB for 16 GB NVM — one 64 B root per *counter block*; our forest
roots cover eight blocks each, giving 32 MB — both scale linearly with
capacity and dwarf SCUE's 128 B either way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.secure import SCHEMES
from repro.sim.config import SystemConfig

#: Published §V-F numbers, in bytes, for a 16 GB NVM.
PAPER_OVERHEADS = {
    "scue": 128,
    "plp": 616 + 48 // 8,
    "bmf-ideal": 256 * 1024 * 1024,
    "lazy": 64,
    "eager": 64,
    "baseline": 0,
}

PAPER_NVM_BYTES = 16 * 1024**3


@dataclass(frozen=True)
class OverheadRow:
    scheme: str
    measured_bytes: int
    paper_bytes: int | None


def sec5f_space_overheads(
        data_capacity: int = PAPER_NVM_BYTES) -> list[OverheadRow]:
    """On-chip non-volatile overhead per scheme at ``data_capacity``."""
    rows: list[OverheadRow] = []
    for name, cls in sorted(SCHEMES.items()):
        controller = cls(SystemConfig(scheme=name,
                                      data_capacity=data_capacity))
        rows.append(OverheadRow(name, controller.onchip_overhead_bytes(),
                                PAPER_OVERHEADS.get(name)))
    return rows


def overhead_long_rows(rows: list[OverheadRow]) -> list[dict]:
    """Tidy ``{scheme, source, bytes}`` rows — one row per measured
    value and one per published value — sorted for byte-stable CSV
    emission (repro.viz)."""
    out: list[dict] = []
    for row in sorted(rows, key=lambda r: r.scheme):
        out.append({"scheme": row.scheme, "source": "measured",
                    "bytes": row.measured_bytes})
        if row.paper_bytes is not None:
            out.append({"scheme": row.scheme, "source": "paper",
                        "bytes": row.paper_bytes})
    return out
