"""Shared experiment plumbing: run a workload x scheme matrix at a chosen
scale and aggregate the paper-style normalised ratios.

Cell execution goes through :mod:`repro.campaign` — serially in-process
by default, across a worker pool with ``jobs>1``, and resumably when a
result cache is supplied (docs/benchmarks.md).

Scaling methodology (DESIGN.md §2): the paper simulates 16 GB of PCM under
a 256 KB metadata cache and a 4 MB LLC — the metadata cache covers 1/1024
of the counter region, and application footprints dwarf the LLC.  Running
16 GB of traffic through a Python model is pointless, so a
:class:`BenchScale` shrinks capacity *and* the caches together, keeping
the pressure ratios (counter-region : metadata-cache, footprint : LLC) in
the paper's regime while forcing the paper's 9-level tree geometry so
branch lengths — the quantity the schemes fight over — match Table II.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import CampaignSpec
from repro.mem.hierarchy import HierarchyConfig
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.workloads import ALL_WORKLOADS, SPEC_WORKLOADS

#: The comparison set of Figs 9/10 (baseline is the denominator).
EVAL_SCHEMES = ("plp", "lazy", "bmf-ideal", "scue")


@dataclass(frozen=True)
class BenchScale:
    """How big an experiment to run.

    ``quick`` keeps unit-test latency sane; ``default`` is what the
    ``benchmarks/`` suite runs; ``paper`` is the scale behind the
    committed EXPERIMENTS.md numbers.
    """

    data_capacity: int
    operations: int          # persistent-workload operations
    spec_accesses: int       # SPEC-like trace length (accesses)
    warmup_accesses: int
    tree_levels: int = 9     # Table II geometry
    metadata_cache_size: int = 32 * 1024
    l1_size: int = 16 * 1024
    l2_size: int = 64 * 1024
    l3_size: int = 512 * 1024

    @classmethod
    def quick(cls) -> "BenchScale":
        return cls(data_capacity=16 * 1024 * 1024, operations=500,
                   spec_accesses=6000, warmup_accesses=200,
                   metadata_cache_size=16 * 1024, l3_size=256 * 1024)

    @classmethod
    def default(cls) -> "BenchScale":
        return cls(data_capacity=32 * 1024 * 1024, operations=2500,
                   spec_accesses=40000, warmup_accesses=500)

    @classmethod
    def paper(cls) -> "BenchScale":
        return cls(data_capacity=64 * 1024 * 1024, operations=8000,
                   spec_accesses=120000, warmup_accesses=2000,
                   metadata_cache_size=64 * 1024,
                   l3_size=1024 * 1024)

    def config(self, scheme: str = "scue", **overrides) -> SystemConfig:
        hierarchy = HierarchyConfig(
            l1_size=self.l1_size, l1_ways=2,
            l2_size=self.l2_size, l2_ways=8,
            l3_size=self.l3_size, l3_ways=8)
        base = dict(scheme=scheme,
                    data_capacity=self.data_capacity,
                    tree_levels=self.tree_levels,
                    metadata_cache_size=self.metadata_cache_size,
                    hierarchy=hierarchy)
        base.update(overrides)
        return SystemConfig(**base)

    def operations_for(self, workload: str) -> int:
        return self.spec_accesses if workload in SPEC_WORKLOADS \
            else self.operations


@dataclass
class MatrixResult:
    """Results of a workload x scheme sweep, plus ratio helpers."""

    results: dict[str, dict[str, RunResult]] = field(default_factory=dict)

    def add(self, workload: str, scheme: str, result: RunResult) -> None:
        self.results.setdefault(workload, {})[scheme] = result

    @property
    def workloads(self) -> list[str]:
        return list(self.results)

    def schemes(self) -> list[str]:
        first = next(iter(self.results.values()), {})
        return list(first)

    def ratio(self, workload: str, scheme: str, metric: str,
              baseline: str = "baseline") -> float:
        row = self.results[workload]
        if metric == "write_latency":
            return row[scheme].write_latency_vs(row[baseline])
        if metric == "execution_time":
            return row[scheme].execution_time_vs(row[baseline])
        if metric == "metadata_accesses":
            denom = row[baseline].metadata_accesses
            return row[scheme].metadata_accesses / denom if denom else 0.0
        raise ValueError(f"unknown metric {metric!r}")

    def ratio_table(self, metric: str, schemes: Sequence[str],
                    baseline: str = "baseline") -> dict[str, dict[str, float]]:
        """``{workload: {scheme: ratio}}`` plus a geometric-mean row."""
        table = {
            workload: {scheme: self.ratio(workload, scheme, metric, baseline)
                       for scheme in schemes}
            for workload in self.results
        }
        table["geomean"] = {
            scheme: geomean(table[w][scheme] for w in self.results)
            for scheme in schemes
        }
        return table

    def merged_histograms(self, scheme: str) -> dict[str, dict]:
        """Bucket-wise merge of one scheme's latency histograms across
        every workload (``{metric: LatencyHistogram.to_dict()}``) — the
        campaign-level tail view (p99 across the whole matrix) that a
        mean-of-means cannot provide."""
        from repro.obs.histogram import LatencyHistogram

        merged: dict[str, LatencyHistogram] = {}
        for row in self.results.values():
            result = row.get(scheme)
            if result is None:
                continue
            for metric, snapshot in result.histograms.items():
                hist = LatencyHistogram.from_dict(snapshot, name=metric)
                if metric in merged:
                    merged[metric].merge(hist)
                else:
                    merged[metric] = hist
        return {metric: hist.to_dict() for metric, hist in merged.items()}

    def merged_attribution(self, scheme: str) -> dict[str, int]:
        """One scheme's cycle-attribution ledger summed across every
        workload (``{component: cycles}``, sorted by component) — the
        campaign-level composition view behind the report bundle's
        stacked-bar dashboard."""
        merged: dict[str, int] = {}
        for row in self.results.values():
            result = row.get(scheme)
            if result is None:
                continue
            for component, cycles in result.attribution.items():
                merged[component] = merged.get(component, 0) + cycles
        return dict(sorted(merged.items()))


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_matrix(scale: BenchScale,
               workloads: Sequence[str] = ALL_WORKLOADS,
               schemes: Sequence[str] = ("baseline",) + EVAL_SCHEMES,
               seed: int = 42,
               jobs: int = 1,
               cache: ResultCache | str | Path | None = None,
               manifest_path: str | Path | None = None,
               progress: ProgressReporter | None = None,
               **config_overrides) -> MatrixResult:
    """Run every (workload, scheme) pair on identical traces.

    Cells are submitted through the campaign engine: ``jobs=1`` (the
    default) executes them serially in-process exactly as the classic
    harness did, while ``jobs>1`` shards them across a worker pool.
    Because every workload generator is seed-deterministic, the two
    paths produce identical results cell for cell.  Pass ``cache`` (a
    :class:`~repro.campaign.cache.ResultCache` or a directory path) to
    skip cells a previous — possibly killed — run already completed, and
    ``manifest_path`` to stream per-cell status to a manifest JSON.
    """
    spec = CampaignSpec.matrix(scale, workloads, schemes, seed=seed,
                               **config_overrides)
    outcome = run_campaign(
        spec, jobs=jobs, cache=cache, manifest_path=manifest_path,
        progress=progress, fail_fast=True)
    outcome.raise_on_failure()
    matrix = MatrixResult()
    for cell, result in outcome.iter_results():
        matrix.add(cell.workload, cell.config.scheme, result)
    return matrix
