"""Per-figure experiment drivers (paper §V).

Every public function regenerates one table/figure of the paper's
evaluation and returns a plain data structure; the ``PAPER_*`` constants
carry the published numbers so reports can print paper-vs-measured side by
side (EXPERIMENTS.md is generated from exactly these runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.bench.harness import (
    BenchScale,
    EVAL_SCHEMES,
    MatrixResult,
    geomean,
    run_matrix,
)
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.crash.attacks import (
    combined_attack,
    replay_leaf,
    roll_forward_leaf,
    snapshot_leaf,
)
from repro.crash.injection import CrashPlan, run_with_crash
from repro.errors import RecoveryError
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import ALL_WORKLOADS, make_workload

#: Published averages, Fig 9 (write latency over Baseline).
PAPER_FIG9 = {"plp": 2.74, "lazy": 1.29, "bmf-ideal": 1.21, "scue": 1.12}
#: Published averages, Fig 10 (execution time over Baseline).
PAPER_FIG10 = {"plp": 1.96, "lazy": 1.17, "bmf-ideal": 1.11, "scue": 1.07}
#: Published Fig 11/12 endpoints (SCUE at 160-cycle hash vs 20-cycle).
PAPER_FIG11_AVG_160 = 1.20
PAPER_FIG12_AVG_160 = 1.14
#: Published §V-E ratios over Lazy.
PAPER_SEC5E = {"plp": 7.04, "bmf-ideal": 1.0 - 0.087, "scue": 1.0}
#: Published Fig 13 recovery times at a 4 MB metadata cache.
PAPER_FIG13 = {"star": 0.05, "agit": 0.17}

HASH_SWEEP = (20, 40, 80, 160)


# ======================================================================
# Figures 9 & 10 — scheme comparison
# ======================================================================
@dataclass
class ComparisonFigure:
    """A normalised workload x scheme table plus the paper's averages."""

    metric: str
    table: dict[str, dict[str, float]]
    paper_average: dict[str, float]
    matrix: MatrixResult = field(repr=False, default=None)

    @property
    def measured_average(self) -> dict[str, float]:
        return dict(self.table["geomean"])

    def long_rows(self) -> list[dict[str, Any]]:
        """Tidy ``{workload, scheme, ratio}`` rows (geomean excluded),
        sorted for byte-stable CSV emission (repro.viz)."""
        return [{"workload": workload, "scheme": scheme,
                 "ratio": self.table[workload][scheme]}
                for workload in sorted(w for w in self.table
                                       if w != "geomean")
                for scheme in self.table[workload]]


def fig9_write_latency(scale: BenchScale | None = None,
                       workloads: Sequence[str] = ALL_WORKLOADS,
                       seed: int = 42,
                       **campaign_opts: Any) -> ComparisonFigure:
    """Fig 9: write latencies normalised to Baseline.

    ``campaign_opts`` (``jobs``, ``cache``, ``manifest_path``,
    ``progress``) go to the campaign engine — see :func:`run_matrix`.
    """
    scale = scale or BenchScale.default()
    matrix = run_matrix(scale, workloads, seed=seed, **campaign_opts)
    return ComparisonFigure(
        "write_latency",
        matrix.ratio_table("write_latency", EVAL_SCHEMES),
        PAPER_FIG9, matrix)


def fig10_execution_time(scale: BenchScale | None = None,
                         workloads: Sequence[str] = ALL_WORKLOADS,
                         seed: int = 42,
                         matrix: MatrixResult | None = None,
                         **campaign_opts: Any) -> ComparisonFigure:
    """Fig 10: execution time normalised to Baseline.  Pass the matrix
    from :func:`fig9_write_latency` to reuse the same runs."""
    if matrix is None:
        scale = scale or BenchScale.default()
        matrix = run_matrix(scale, workloads, seed=seed, **campaign_opts)
    return ComparisonFigure(
        "execution_time",
        matrix.ratio_table("execution_time", EVAL_SCHEMES),
        PAPER_FIG10, matrix)


# ======================================================================
# Figures 11 & 12 — hash-latency sensitivity (SCUE only)
# ======================================================================
@dataclass
class HashSweepFigure:
    """Per-workload ratios vs the 20-cycle configuration."""

    metric: str
    #: ``{hash_latency: {workload: ratio_vs_20}}``
    table: dict[int, dict[str, float]]
    paper_average_160: float

    def average(self, latency: int) -> float:
        return geomean(self.table[latency].values())

    def long_rows(self) -> list[dict[str, Any]]:
        """Tidy ``{workload, hash_latency, ratio}`` rows, sorted for
        byte-stable CSV emission (repro.viz)."""
        workloads = sorted({w for row in self.table.values()
                            for w in row})
        return [{"workload": workload, "hash_latency": latency,
                 "ratio": self.table[latency][workload]}
                for workload in workloads
                for latency in sorted(self.table)]


def _hash_sweep(scale: BenchScale, workloads: Sequence[str], metric: str,
                seed: int,
                **campaign_opts: Any) -> dict[int, dict[str, float]]:
    spec = CampaignSpec.hash_sweep(scale, workloads,
                                   latencies=HASH_SWEEP, seed=seed)
    outcome = run_campaign(spec, fail_fast=True, **campaign_opts)
    outcome.raise_on_failure()
    measured: dict[tuple[str, int], float] = {}
    for cell, result in outcome.iter_results():
        measured[(cell.workload, cell.config.hash_latency)] = (
            result.avg_write_latency if metric == "write_latency"
            else result.cycles)
    runs: dict[int, dict[str, float]] = {lat: {} for lat in HASH_SWEEP}
    for name in workloads:
        base = measured[(name, HASH_SWEEP[0])] or 1.0
        for latency in HASH_SWEEP:
            runs[latency][name] = measured[(name, latency)] / base
    return runs


def fig11_hash_sweep_write_latency(scale: BenchScale | None = None,
                                   workloads: Sequence[str] = ALL_WORKLOADS,
                                   seed: int = 42,
                                   **campaign_opts: Any) -> HashSweepFigure:
    """Fig 11: SCUE write latency at 20/40/80/160-cycle hashes."""
    scale = scale or BenchScale.default()
    return HashSweepFigure(
        "write_latency",
        _hash_sweep(scale, workloads, "write_latency", seed,
                    **campaign_opts),
        PAPER_FIG11_AVG_160)


def fig12_hash_sweep_execution_time(scale: BenchScale | None = None,
                                    workloads: Sequence[str] = ALL_WORKLOADS,
                                    seed: int = 42,
                                    **campaign_opts: Any) -> HashSweepFigure:
    """Fig 12: SCUE execution time at 20/40/80/160-cycle hashes."""
    scale = scale or BenchScale.default()
    return HashSweepFigure(
        "execution_time",
        _hash_sweep(scale, workloads, "execution_time", seed,
                    **campaign_opts),
        PAPER_FIG12_AVG_160)


# ======================================================================
# Figure 13 — recovery time with STAR/AGIT trackers
# ======================================================================
@dataclass
class RecoveryFigure:
    """Recovery seconds per (tracker, metadata cache size)."""

    #: ``{tracker: {cache_bytes: seconds}}`` — the paper's cost model
    #: (tracker read-count formulas at 100 ns/fetch).
    table: dict[str, dict[int, float]]
    stale_nodes: dict[str, dict[int, int]]
    paper_4mb: dict[str, float]
    #: Functional cross-check: reads performed by an *actual* targeted
    #: rebuild on an honest (write-through) configuration, per tracker.
    functional_reads: dict[str, int] = field(default_factory=dict)

    def long_rows(self) -> list[dict[str, Any]]:
        """Tidy ``{tracker, cache_kb, seconds, stale_nodes}`` rows,
        sorted for byte-stable CSV emission (repro.viz)."""
        return [{"tracker": tracker, "cache_kb": cache_bytes // 1024,
                 "seconds": seconds,
                 "stale_nodes": self.stale_nodes[tracker][cache_bytes]}
                for tracker in sorted(self.table)
                for cache_bytes, seconds in
                sorted(self.table[tracker].items())]


def fig13_recovery_time(cache_sizes: Sequence[int] = (
        256 * 1024, 512 * 1024, 1024 * 1024, 2 * 1024 * 1024,
        4 * 1024 * 1024),
        seed: int = 42) -> RecoveryFigure:
    """Fig 13: SCUE-STAR vs SCUE-AGIT recovery time as the metadata cache
    (hence the worst-case stale set) grows.

    The workload disables leaf write-through so intermediate *and* leaf
    metadata genuinely sit dirty in the cache at crash time, giving the
    cache-proportional stale sets the paper sweeps.
    """
    table: dict[str, dict[int, float]] = {"star": {}, "agit": {}}
    stale: dict[str, dict[int, int]] = {"star": {}, "agit": {}}
    for tracker in ("star", "agit"):
        for cache_bytes in cache_sizes:
            # Touch enough distinct lines that dirty metadata fills the
            # cache: one leaf covers 4 KB of data, one cache line each.
            lines_needed = cache_bytes // 64
            data_capacity = max(16 * 1024 * 1024,
                                lines_needed * 64 * 64 * 2)
            workload = make_workload(
                "array", data_capacity, operations=lines_needed * 2,
                seed=seed)
            cfg = SystemConfig(scheme="scue", data_capacity=data_capacity,
                               metadata_cache_size=cache_bytes,
                               recovery_tracker=tracker,
                               leaf_write_through=False)
            system = System(cfg)
            run_with_crash(system, workload.trace(),
                           CrashPlan(after_accesses=lines_needed * 3))
            controller = system.controller
            stale[tracker][cache_bytes] = controller.tracker.stale_nodes
            table[tracker][cache_bytes] = \
                controller.tracker.recovery_seconds()
    # Functional cross-check: on an honest write-through configuration
    # the targeted rebuild genuinely recovers, touching only the stale
    # closure (the sweep above prices the paper's worst case; this runs
    # the mechanism).
    functional: dict[str, int] = {}
    for tracker in ("star", "agit"):
        cfg = SystemConfig(scheme="scue", data_capacity=16 * 1024 * 1024,
                           metadata_cache_size=8 * 1024,
                           recovery_tracker=tracker)
        system = System(cfg)
        workload = make_workload("array", cfg.data_capacity,
                                 operations=400, seed=seed)
        run_with_crash(system, workload.trace(), CrashPlan(600))
        report = system.recover()
        if not report.success:
            raise RecoveryError(report.detail)
        functional[tracker] = report.metadata_reads
    return RecoveryFigure(table, stale, PAPER_FIG13, functional)


# ======================================================================
# Figure 5 / §III-B — the crash window, qualitatively
# ======================================================================
@dataclass
class CrashWindowResult:
    """Recovery success rates per scheme under mid-burst crashes."""

    #: ``{scheme: fraction of crashes recovered successfully}``
    success_rate: dict[str, float]
    trials: int

    def long_rows(self) -> list[dict[str, Any]]:
        """Tidy ``{scheme, success_rate, trials}`` rows, sorted for
        byte-stable CSV emission (repro.viz)."""
        return [{"scheme": scheme, "success_rate": rate,
                 "trials": self.trials}
                for scheme, rate in sorted(self.success_rate.items())]


def fig5_crash_window(schemes: Sequence[str] = (
        "scue", "plp", "bmf-ideal", "eager", "lazy"),
        trials: int = 10, operations: int = 400,
        data_capacity: int = 8 * 1024 * 1024,
        seed: int = 42) -> CrashWindowResult:
    """Crash mid-workload (always immediately after a persist — inside
    eager's crash window) and attempt recovery: SCUE/PLP/BMF always
    recover, lazy and eager report false attacks (§III-B)."""
    rates: dict[str, float] = {}
    for scheme in schemes:
        successes = 0
        for trial in range(trials):
            workload = make_workload("array", data_capacity, operations,
                                     seed=seed + trial)
            cfg = SystemConfig(scheme=scheme, data_capacity=data_capacity)
            system = System(cfg)
            crash_at = 50 + (trial * 97) % (operations // 2)
            run_with_crash(system, workload.trace(),
                           CrashPlan(after_accesses=crash_at))
            report = system.recover()
            successes += 1 if report.success else 0
        rates[scheme] = successes / trials
    return CrashWindowResult(rates, trials)


# ======================================================================
# Table I — attack detection
# ======================================================================
@dataclass
class AttackDetectionResult:
    """Which detector fired for each attack class (Table I)."""

    #: ``{attack: {"detected": bool, "by": "leaf_hmac"|"root"|"none"}}``
    outcomes: dict[str, dict[str, object]]

    def all_detected(self) -> bool:
        """Every genuine attack was detected (the clean-crash control is
        excluded — it must *not* report anything)."""
        return all(o["detected"] for name, o in self.outcomes.items()
                   if name != "no_attack_control")

    def control_clean(self) -> bool:
        """The no-attack control recovered without a false positive."""
        control = self.outcomes.get("no_attack_control")
        return control is not None and not control["detected"]


def table1_attack_detection(data_capacity: int = 8 * 1024 * 1024,
                            operations: int = 300,
                            seed: int = 42) -> AttackDetectionResult:
    """Reproduce Table I on SCUE: roll-forward dies on leaf HMACs,
    replay/roll-back dies on the Recovery_root, the combined attack dies
    on leaf HMACs."""

    def fresh_system() -> System:
        cfg = SystemConfig(scheme="scue", data_capacity=data_capacity)
        return System(cfg)

    def classify(report) -> dict[str, object]:
        if report.leaf_hmac_failures:
            return {"detected": True, "by": "leaf_hmac"}
        if not report.root_matched:
            return {"detected": True, "by": "root"}
        return {"detected": not report.success, "by": "none"}

    outcomes: dict[str, dict[str, object]] = {}
    workload = make_workload("array", data_capacity, operations, seed=seed)
    trace = list(workload.trace())

    # Roll-forward -----------------------------------------------------
    system = fresh_system()
    system.run(trace)
    system.crash()
    roll_forward_leaf(system.controller.store, 0, slot=3, amount=2)
    outcomes["roll_forward"] = classify(system.recover())

    # Replay (the dangerous roll-back) ----------------------------------
    system = fresh_system()
    system.run(trace)
    controller = system.controller
    # Write a known line, snapshot its (freshly persisted) leaf, then
    # advance it once more so the snapshot is provably stale.
    controller.write_data(0, None, cycle=10**9)
    snap = snapshot_leaf(controller.store, 0)
    controller.write_data(0, None, cycle=10**9 + 100)
    system.crash()
    replay_leaf(controller.store, snap)
    outcomes["replay_roll_back"] = classify(system.recover())

    # Combined roll-forward + roll-back (sum-preserving) ----------------
    system = fresh_system()
    system.run(trace)
    system.crash()
    combined_attack(system.controller.store, forward_index=0,
                    back_index=1, slot=2, amount=1)
    outcomes["forward_plus_back"] = classify(system.recover())

    # Control: clean crash, no attack -----------------------------------
    system = fresh_system()
    system.run(trace)
    system.crash()
    report = system.recover()
    outcomes["no_attack_control"] = {
        "detected": not report.success, "by": "none"}
    return AttackDetectionResult(outcomes)


# ======================================================================
# §V-E — memory-access counts
# ======================================================================
@dataclass
class AccessCountResult:
    """Metadata NVM accesses per scheme, normalised to Lazy."""

    table: dict[str, dict[str, float]]
    paper_average: dict[str, float]

    @property
    def measured_average(self) -> dict[str, float]:
        return dict(self.table["geomean"])


def sec5e_memory_accesses(scale: BenchScale | None = None,
                          workloads: Sequence[str] = ALL_WORKLOADS,
                          seed: int = 42,
                          matrix: MatrixResult | None = None,
                          **campaign_opts: Any) -> AccessCountResult:
    """§V-E: PLP ~7x Lazy metadata traffic; BMF-ideal ~8.7% below Lazy;
    SCUE ~= Lazy."""
    if matrix is None:
        scale = scale or BenchScale.default()
        matrix = run_matrix(scale, workloads, seed=seed, **campaign_opts)
    schemes = [s for s in EVAL_SCHEMES if s != "lazy"]
    table = matrix.ratio_table("metadata_accesses", schemes + ["lazy"],
                               baseline="lazy")
    return AccessCountResult(table, PAPER_SEC5E)
