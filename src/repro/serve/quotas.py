"""Per-tenant admission control.

Quotas bound what any one tenant can park on the service, so a shared
deployment stays responsive for everyone else.  Three independent caps
(each disabled by setting it to 0):

* ``max_queued_cells`` — cells a tenant may have waiting in the fair
  queue.  Checked at submission; exceeding it rejects the *whole job*
  with a 429 (partial admission would make retry semantics ambiguous).
* ``max_running_cells`` — cells a tenant may have executing at once,
  enforced by the scheduler's eligibility check each time it draws from
  the queue.  This is fairness's hard backstop: even a tenant alone on
  the service cannot occupy every worker slot if capped below the pool.
* ``max_active_jobs`` — not-yet-finished jobs per tenant, bounding the
  bookkeeping (and event history) one tenant can pin in memory.

Cells served straight from the cache charge nothing: dedup means a
quota measures *compute demand*, not request volume — exactly the
"most requests are cache hits" economics the service exists for.

Pure synchronous bookkeeping; the asyncio scheduler calls it from the
event-loop thread only.  Unit-tested in tests/serve/test_quotas.py.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.serve.api import ServeError


class QuotaExceeded(ServeError):
    """Mapped to HTTP 429."""

    status = 429
    code = "quota_exceeded"


@dataclass(frozen=True)
class QuotaPolicy:
    """The per-tenant caps; 0 disables a cap."""

    max_queued_cells: int = 1024
    max_running_cells: int = 4
    max_active_jobs: int = 16

    def __post_init__(self) -> None:
        for name in ("max_queued_cells", "max_running_cells",
                     "max_active_jobs"):
            if getattr(self, name) < 0:
                raise ServeError(f"{name} must be >= 0")


class TenantQuotas:
    """Usage ledger enforcing a :class:`QuotaPolicy`."""

    def __init__(self, policy: QuotaPolicy | None = None) -> None:
        self.policy = policy or QuotaPolicy()
        self._queued: Counter[str] = Counter()
        self._running: Counter[str] = Counter()
        self._jobs: Counter[str] = Counter()

    # -- admission (raises) --------------------------------------------
    def admit_job(self, tenant: str, new_cells: int) -> None:
        """Check a submission that would queue ``new_cells`` cells.

        Raises :class:`QuotaExceeded` without charging anything; on
        success the caller charges via :meth:`job_started` /
        :meth:`cell_queued`.
        """
        policy = self.policy
        if policy.max_active_jobs \
                and self._jobs[tenant] + 1 > policy.max_active_jobs:
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {self._jobs[tenant]} "
                f"active job(s) (limit {policy.max_active_jobs})")
        if policy.max_queued_cells \
                and self._queued[tenant] + new_cells \
                > policy.max_queued_cells:
            raise QuotaExceeded(
                f"job would queue {new_cells} cell(s) on top of "
                f"{self._queued[tenant]} already queued for tenant "
                f"{tenant!r} (limit {policy.max_queued_cells})")

    # -- charging ------------------------------------------------------
    def job_started(self, tenant: str) -> None:
        self._jobs[tenant] += 1

    def job_finished(self, tenant: str) -> None:
        if self._jobs[tenant] > 0:
            self._jobs[tenant] -= 1

    def cell_queued(self, tenant: str) -> None:
        self._queued[tenant] += 1

    def can_run(self, tenant: str) -> bool:
        """Scheduler eligibility: may this tenant start another cell?"""
        cap = self.policy.max_running_cells
        return not cap or self._running[tenant] < cap

    def cell_started(self, tenant: str) -> None:
        self._queued[tenant] = max(0, self._queued[tenant] - 1)
        self._running[tenant] += 1

    def cell_finished(self, tenant: str) -> None:
        if self._running[tenant] > 0:
            self._running[tenant] -= 1

    # ------------------------------------------------------------------
    def usage(self, tenant: str) -> dict[str, int]:
        return {"queued": self._queued[tenant],
                "running": self._running[tenant],
                "jobs": self._jobs[tenant]}

    def snapshot(self) -> dict[str, dict[str, int]]:
        tenants = (set(self._queued) | set(self._running)
                   | set(self._jobs))
        return {tenant: self.usage(tenant)
                for tenant in sorted(tenants)
                if any(self.usage(tenant).values())}
