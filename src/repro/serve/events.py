"""Progress event streaming: the bus behind ``/v1/campaigns/…/events``.

Events are plain dicts in the NDJSON vocabulary of
:data:`repro.serve.api.EVENT_FIELDS`.  The bus keeps a bounded
*history* per job so a client that connects after submission (the
normal case — submit returns the job id, then the client opens the
stream) replays everything it missed before following live events; and
it fans live events out to per-subscriber asyncio queues so one slow
consumer cannot stall the scheduler (a full subscriber queue drops the
oldest event and marks the subscription lossy rather than blocking).

The simulation-side payload comes from :mod:`repro.obs`: every
``cell_finished`` event carries :func:`result_obs_summary` — the cycle
attribution ledger and p50/p95/p99 snapshots of the run's latency
histograms — so a streaming consumer sees the same per-component
breakdown the span-tracing layer enforces on every result, without
fetching the full result object.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from typing import Any

from repro.sim.results import RunResult

#: Per-job history bound: enough for MAX_CELLS_PER_JOB cells with
#: scheduling + start + finish + a retry each, with headroom.
HISTORY_LIMIT = 20_000
#: Per-subscriber live-queue bound before it turns lossy.
SUBSCRIBER_QUEUE = 1024


def result_obs_summary(result: RunResult) -> dict[str, Any]:
    """The obs facts worth streaming: attribution + latency tails."""
    latencies = {}
    for name, data in sorted(result.histograms.items()):
        if not data.get("count"):
            continue
        latencies[name] = {"count": data.get("count"),
                           "p50": data.get("p50"),
                           "p95": data.get("p95"),
                           "p99": data.get("p99"),
                           "max": data.get("max")}
    return {"cycles": result.cycles,
            "attribution": dict(result.attribution),
            "latency": latencies}


class Subscription:
    """One consumer's view of a job's event stream."""

    def __init__(self, bus: "EventBus", job_id: str,
                 backlog: list[dict[str, Any]]) -> None:
        self._bus = bus
        self.job_id = job_id
        self._backlog = backlog
        self._queue: asyncio.Queue[dict[str, Any] | None] = \
            asyncio.Queue(maxsize=SUBSCRIBER_QUEUE)
        self.lossy = False

    def _offer(self, event: dict[str, Any] | None) -> None:
        try:
            self._queue.put_nowait(event)
        except asyncio.QueueFull:
            # Drop the oldest so the stream stays live; the consumer
            # can detect the gap from the seq numbers.
            self.lossy = True
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:
                pass
            try:
                self._queue.put_nowait(event)
            except asyncio.QueueFull:
                pass

    async def next(self) -> dict[str, Any] | None:
        """The next event, or ``None`` once the stream is closed."""
        if self._backlog:
            return self._backlog.pop(0)
        return await self._queue.get()

    def close(self) -> None:
        self._bus._unsubscribe(self)


class EventBus:
    """Publish/subscribe hub with per-job bounded history."""

    def __init__(self) -> None:
        self._seq = itertools.count(1)
        self._history: dict[str, list[dict[str, Any]]] = {}
        self._closed: set[str] = set()
        self._subscribers: dict[str, list[Subscription]] = {}
        self.events_published = 0

    # -- producer side -------------------------------------------------
    def publish(self, job_id: str, event_type: str,
                **fields: Any) -> dict[str, Any]:
        event = {"seq": next(self._seq), "ts": time.time(),
                 "event": event_type, "job": job_id, **fields}
        self.events_published += 1
        history = self._history.setdefault(job_id, [])
        history.append(event)
        if len(history) > HISTORY_LIMIT:
            del history[: len(history) - HISTORY_LIMIT]
        for sub in self._subscribers.get(job_id, []):
            sub._offer(event)
        return event

    def close_job(self, job_id: str) -> None:
        """Mark the job's stream complete; live followers get EOF."""
        self._closed.add(job_id)
        for sub in self._subscribers.get(job_id, []):
            sub._offer(None)

    def forget_job(self, job_id: str) -> None:
        """Drop a finished job's history (retention policy's hook)."""
        self._history.pop(job_id, None)
        self._closed.discard(job_id)

    # -- consumer side -------------------------------------------------
    def subscribe(self, job_id: str) -> Subscription:
        """History replay + live follow for one job."""
        backlog = list(self._history.get(job_id, []))
        sub = Subscription(self, job_id, backlog)
        if job_id in self._closed:
            sub._offer(None)        # replay, then immediate EOF
        else:
            self._subscribers.setdefault(job_id, []).append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        subs = self._subscribers.get(sub.job_id)
        if subs and sub in subs:
            subs.remove(sub)
            if not subs:
                del self._subscribers[sub.job_id]

    def history(self, job_id: str) -> list[dict[str, Any]]:
        return list(self._history.get(job_id, []))

    def stats(self) -> dict[str, int]:
        """Bus counters for ``/v1/metrics``."""
        return {
            "events_published": self.events_published,
            "jobs_tracked": len(self._history),
            "jobs_closed": len(self._closed),
            "subscribers": sum(len(subs) for subs
                               in self._subscribers.values()),
        }


# -- wire encodings -----------------------------------------------------
def encode_ndjson(event: dict[str, Any]) -> bytes:
    return (json.dumps(event, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def encode_sse(event: dict[str, Any]) -> bytes:
    payload = json.dumps(event, sort_keys=True, separators=(",", ":"))
    return (f"id: {event.get('seq', 0)}\n"
            f"event: {event.get('event', 'message')}\n"
            f"data: {payload}\n\n").encode()
