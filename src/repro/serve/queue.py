"""Fair cell queueing with cross-job dedup.

Two pure data structures (no asyncio, no I/O) the scheduler composes:

* :class:`CellTask` — one *unique* unit of compute.  Several jobs that
  submit the same cell (same cache key) share one task; each records a
  ``(job_id, index)`` waiter and is notified when the single execution
  completes.  This is the in-flight half of dedup — the at-rest half is
  the content-addressed store.
* :class:`FairQueue` — per-tenant FIFOs drained round-robin, so one
  tenant submitting a 1000-cell grid cannot starve another tenant's
  4-cell grid: each scheduling turn offers every tenant one cell.  The
  rotation pointer persists across calls, making the fairness property
  exact under contention (see tests/serve/test_queue.py).

``pop(eligible=...)`` lets the caller veto tenants (e.g. at their
running-cell quota) without losing their queue position: a vetoed
tenant's cells stay put and the turn passes on.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.campaign.spec import CellSpec


@dataclass
class CellTask:
    """One deduplicated cell execution and the jobs awaiting it."""

    key: str
    cell: CellSpec
    tenant: str
    #: ``(job_id, cell_index)`` pairs to notify on completion.  The
    #: first entry is the submission that created the task.
    waiters: list[tuple[str, int]] = field(default_factory=list)
    attempts: int = 0

    def add_waiter(self, job_id: str, index: int) -> None:
        self.waiters.append((job_id, index))


class FairQueue:
    """Round-robin-over-tenants FIFO of :class:`CellTask`."""

    def __init__(self) -> None:
        #: Insertion-ordered so the round-robin order is deterministic.
        self._queues: "OrderedDict[str, deque[CellTask]]" = OrderedDict()
        #: Tenants in rotation order; index of the next tenant to serve.
        self._rotation: list[str] = []
        self._next = 0

    # ------------------------------------------------------------------
    def push(self, task: CellTask) -> None:
        queue = self._queues.get(task.tenant)
        if queue is None:
            queue = deque()
            self._queues[task.tenant] = queue
            # New tenants join the rotation *behind* the current turn,
            # so joining can never steal an existing tenant's slot.
            self._rotation.append(task.tenant)
        queue.append(task)

    def pop(self, eligible: Callable[[str], bool] | None = None
            ) -> CellTask | None:
        """The next task, honouring tenant rotation; ``None`` if every
        queued tenant is empty or vetoed by ``eligible``."""
        if not self._rotation:
            return None
        size = len(self._rotation)
        for offset in range(size):
            slot = (self._next + offset) % size
            tenant = self._rotation[slot]
            queue = self._queues.get(tenant)
            if not queue:
                continue
            if eligible is not None and not eligible(tenant):
                continue
            task = queue.popleft()
            # Advance the turn past the served tenant.
            self._next = (slot + 1) % size
            self._prune()
            return task
        return None

    def _prune(self) -> None:
        """Drop empty tenants so the rotation stays proportional to
        *active* tenants (an old tenant rejoins at the back later)."""
        if all(self._queues.values()):
            return
        keep = [t for t in self._rotation if self._queues.get(t)]
        # Preserve the turn: the next tenant to serve keeps its claim.
        if keep:
            nxt = None
            size = len(self._rotation)
            for offset in range(size):
                tenant = self._rotation[(self._next + offset) % size]
                if self._queues.get(tenant):
                    nxt = tenant
                    break
            self._next = keep.index(nxt) if nxt in keep else 0
        else:
            self._next = 0
        self._rotation = keep
        for tenant in [t for t, q in self._queues.items() if not q]:
            del self._queues[tenant]

    # ------------------------------------------------------------------
    def depth(self, tenant: str | None = None) -> int:
        if tenant is not None:
            queue = self._queues.get(tenant)
            return len(queue) if queue else 0
        return sum(len(queue) for queue in self._queues.values())

    def tenants(self) -> list[str]:
        return [t for t in self._rotation if self._queues.get(t)]

    def __len__(self) -> int:
        return self.depth()

    def __bool__(self) -> bool:
        return any(self._queues.values())
