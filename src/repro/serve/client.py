"""A thin stdlib client for the simulation service.

``ServeClient`` wraps :mod:`urllib.request` — no sessions, no pooling,
one request per call, matching the server's connection-per-request
model.  It exists so the CLI (``repro-sim submit`` / ``fetch``), the
tests and the CI smoke all talk to the server through one code path,
and as the reference for anyone scripting against the API.

Server discovery: a running server writes ``server.json`` into its
store directory; :func:`discover_url` turns that directory back into a
base URL, so clients sharing a filesystem never need to know the port
(the e2e kill/restart test leans on this — every restart rebinds).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections.abc import Iterator
from pathlib import Path
from typing import Any

from repro.serve.api import ServeError


class ClientError(ServeError):
    """The server (or transport) rejected a client call."""

    def __init__(self, message: str, status: int = 0,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


def discover_url(root: str | Path) -> str:
    """Base URL of the server whose store directory is ``root``."""
    path = Path(root) / "server.json"
    try:
        info = json.loads(path.read_text())
        return f"http://{info['host']}:{info['port']}"
    except (OSError, ValueError, KeyError) as exc:
        raise ClientError(
            f"no running server advertised in {path} ({exc}); "
            f"start one with 'repro-sim serve --dir {root}'") from exc


class ServeClient:
    """Blocking HTTP client for one service instance."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail: dict[str, Any] = {}
            try:
                detail = json.loads(exc.read())
            except ValueError:
                pass
            raise ClientError(
                detail.get("detail", f"HTTP {exc.code}"),
                status=exc.code, payload=detail) from exc
        except urllib.error.URLError as exc:
            raise ClientError(
                f"cannot reach {self.url}: {exc.reason}") from exc
        except TimeoutError as exc:
            # A stale server.json can point at a port whose socket is
            # still held open by a dead server's orphaned workers:
            # the connection opens but nothing ever answers.  Surface
            # it as a ClientError so discovery loops keep retrying.
            raise ClientError(
                f"{self.url} accepted the connection but never "
                f"answered") from exc

    # -- API surface ---------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(self, spec: dict[str, Any],
               tenant: str = "default") -> dict[str, Any]:
        """POST a ``CampaignSpec.to_dict()`` grid; returns the job view."""
        return self._request("POST", "/v1/campaigns",
                             {"tenant": tenant, "spec": spec})

    def status(self, job_id: str,
               with_cells: bool = True) -> dict[str, Any]:
        suffix = "" if with_cells else "?cells=0"
        return self._request("GET", f"/v1/campaigns/{job_id}{suffix}")

    def results(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/campaigns/{job_id}/results")

    def fetch_cell(self, key: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/cells/{key}")

    def events(self, job_id: str, follow: bool = True
               ) -> Iterator[dict[str, Any]]:
        """Stream the job's NDJSON events; ends at ``job_finished``
        (server closes the stream) when following."""
        suffix = "" if follow else "?follow=0"
        request = urllib.request.Request(
            f"{self.url}/v1/campaigns/{job_id}/events{suffix}")
        try:
            response = urllib.request.urlopen(request,
                                              timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise ClientError(f"HTTP {exc.code}",
                              status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ClientError(
                f"cannot reach {self.url}: {exc.reason}") from exc
        except TimeoutError as exc:
            raise ClientError(
                f"{self.url} accepted the connection but never "
                f"answered") from exc
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.2) -> dict[str, Any]:
        """Block until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.status(job_id, with_cells=False)
            if view["state"] in ("done", "failed"):
                return self.status(job_id)
            if time.monotonic() > deadline:
                raise ClientError(
                    f"job {job_id} still {view['state']} after "
                    f"{timeout:g}s")
            time.sleep(poll)
