"""Prometheus text-exposition rendering for ``GET /v1/metrics``.

Zero dependencies: the text exposition format (version 0.0.4) is a
``# HELP`` / ``# TYPE`` header pair followed by ``name{labels} value``
sample lines, which a string builder covers completely.  Everything
exported here is pull-model state the server already tracks — the
:class:`~repro.serve.workers.Scheduler` counters and pool gauges,
per-tenant quota occupancy from
:class:`~repro.serve.quotas.TenantQuotas`, the
:class:`~repro.serve.storage.HotCache` hit/miss totals, and the
:class:`~repro.serve.events.EventBus` counters — so scraping is cheap
and never touches the event loop's hot path.

Metric names follow the Prometheus conventions: ``_total`` suffix on
monotonic counters, base units in the name (``_bytes``), gauges bare.
"""

from __future__ import annotations

from typing import Any, Iterable

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


class _Writer:
    """Accumulates one metric family at a time."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str,
               samples: Iterable[tuple[dict[str, str], Any]]) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            label_str = ""
            if labels:
                inner = ",".join(
                    f'{key}="{_escape_label(str(val))}"'
                    for key, val in sorted(labels.items()))
                label_str = "{" + inner + "}"
            self.lines.append(
                f"{name}{label_str} {_format_value(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_metrics(scheduler: Any, store: Any, bus: Any, *,
                   store_objects: int | None = None) -> str:
    """The full ``/v1/metrics`` payload for one server instance.

    ``store_objects`` lets an async caller pre-fetch the sqlite object
    count off the event loop (``asyncio.to_thread(store.index_count)``)
    and keep this function loop-synchronous — every other gauge reads
    loop-owned scheduler/bus state that must not be snapshotted from
    another thread.  Sync callers omit it and the count is queried
    inline."""
    w = _Writer()

    counters = scheduler.counters
    w.family("repro_serve_jobs_total", "counter",
             "Campaign jobs accepted since server start.",
             [({}, counters["jobs"])])
    w.family("repro_serve_cells_submitted_total", "counter",
             "Cells submitted across all jobs (before dedup).",
             [({}, counters["cells_submitted"])])
    w.family("repro_serve_cells_deduped_total", "counter",
             "Cells satisfied without new compute, by dedup source.",
             [({"source": "store"}, counters["store_hits"]),
              ({"source": "inflight"}, counters["inflight_hits"])])
    w.family("repro_serve_cells_computed_total", "counter",
             "Cells computed to completion by the worker pool.",
             [({}, counters["cells_computed"])])
    w.family("repro_serve_cells_failed_total", "counter",
             "Cells that exhausted retries and failed.",
             [({}, counters["cells_failed"])])

    w.family("repro_serve_queue_depth", "gauge",
             "Cells waiting in the fair queue.",
             [({}, len(scheduler.queue))])
    w.family("repro_serve_running_cells", "gauge",
             "Cells currently executing in the worker pool.",
             [({}, scheduler._running)])
    w.family("repro_serve_inflight_cells", "gauge",
             "Distinct cell keys queued or executing (dedup window).",
             [({}, len(scheduler.inflight))])
    w.family("repro_serve_worker_slots", "gauge",
             "Size of the worker pool.",
             [({}, scheduler.slots)])
    w.family("repro_serve_jobs_active", "gauge",
             "Jobs not yet finished.",
             [({}, sum(1 for job in scheduler.jobs.values()
                       if not job.finished))])

    policy = scheduler.quotas.policy
    w.family("repro_serve_quota_limit", "gauge",
             "Per-tenant quota limits (0 = unlimited).",
             [({"resource": "queued_cells"}, policy.max_queued_cells),
              ({"resource": "running_cells"}, policy.max_running_cells),
              ({"resource": "active_jobs"}, policy.max_active_jobs)])
    tenant_samples = []
    resource_keys = (("queued", "queued_cells"),
                     ("running", "running_cells"),
                     ("jobs", "active_jobs"))
    for tenant, usage in sorted(scheduler.quotas.snapshot().items()):
        for key, resource in resource_keys:
            tenant_samples.append(
                ({"tenant": tenant, "resource": resource}, usage[key]))
    w.family("repro_serve_tenant_quota_usage", "gauge",
             "Per-tenant quota occupancy by resource.",
             tenant_samples)

    hot = store.hot.stats()
    w.family("repro_serve_hot_cache_hits_total", "counter",
             "In-memory hot-cache hits.", [({}, hot["hits"])])
    w.family("repro_serve_hot_cache_misses_total", "counter",
             "In-memory hot-cache misses.", [({}, hot["misses"])])
    w.family("repro_serve_hot_cache_entries", "gauge",
             "Entries resident in the hot cache.",
             [({}, hot["entries"])])
    w.family("repro_serve_hot_cache_bytes", "gauge",
             "Bytes resident in the hot cache.", [({}, hot["bytes"])])
    objects = store.index_count() if store_objects is None \
        else store_objects
    w.family("repro_serve_store_objects", "gauge",
             "Durable result objects in the campaign store.",
             [({}, objects)])

    bus_stats = bus.stats()
    w.family("repro_serve_events_published_total", "counter",
             "Events published on the bus since server start.",
             [({}, bus_stats["events_published"])])
    w.family("repro_serve_event_jobs_tracked", "gauge",
             "Jobs with retained event history.",
             [({}, bus_stats["jobs_tracked"])])
    w.family("repro_serve_event_subscribers", "gauge",
             "Live event-stream subscriptions.",
             [({}, bus_stats["subscribers"])])

    return w.render()
