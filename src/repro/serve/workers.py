"""The asyncio scheduler + bounded worker pool.

One :class:`Scheduler` owns the whole execution side of the service:

* **dedup** — a submitted cell is satisfied, in order of preference,
  by an *in-flight* task computing the same key (attach as a waiter),
  by the shared :class:`~repro.serve.storage.CampaignStore` (cache
  hit, zero compute), or by a new :class:`CellTask` pushed to the
  fair queue.  Checking in-flight before the store closes the window
  where a cell completes between the two checks: an in-flight waiter
  is always notified, and a store hit is always durable.
* **fairness + quotas** — tasks are drawn round-robin across tenants
  (:class:`~repro.serve.queue.FairQueue`) with the tenant's
  running-cell quota as the eligibility check, so the pool can never
  be monopolized.
* **execution** — each task runs through
  :func:`repro.campaign.executor.run_cell` in a worker thread
  (``asyncio.to_thread``), which supervises a real worker process
  with exactly the batch executor's timeout-kill, transient-death
  retry and exponential-backoff semantics.  At most ``slots`` tasks
  run at once.

All bookkeeping mutations happen on the event-loop thread (submission
is loop-synchronous, completion resumes on the loop), so the scheduler
needs no locks; only ``run_cell`` and ``store.put`` leave the loop.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.campaign.executor import CellFn, execute_cell, run_cell
from repro.errors import CampaignError
from repro.serve import api
from repro.serve.events import EventBus, result_obs_summary
from repro.serve.queue import CellTask, FairQueue
from repro.serve.quotas import QuotaPolicy, TenantQuotas
from repro.serve.storage import CampaignStore
from repro.campaign.cache import cell_key


class Job:
    """One submission's live bookkeeping."""

    def __init__(self, view: api.JobView) -> None:
        self.view = view
        self.done = asyncio.Event()
        self._started = time.perf_counter()

    @property
    def finished(self) -> bool:
        return self.view.state in (api.JOB_DONE, api.JOB_FAILED)

    def complete_if_ready(self) -> bool:
        if self.finished:
            return False
        if any(cell.state in (api.CELL_WAITING, api.CELL_RUNNING)
               for cell in self.view.cells):
            return False
        failed = any(cell.state == api.CELL_FAILED
                     for cell in self.view.cells)
        self.view.state = api.JOB_FAILED if failed else api.JOB_DONE
        self.view.wall_time = time.perf_counter() - self._started
        self.done.set()
        return True


class Scheduler:
    """Owns jobs, the fair queue, the quota ledger and the pool."""

    def __init__(self, store: CampaignStore, bus: EventBus, *,
                 slots: int = 2,
                 timeout: float | None = None,
                 retries: int | None = None,
                 backoff: float = 0.5,
                 policy: QuotaPolicy | None = None,
                 cell_fn: CellFn = execute_cell) -> None:
        self.store = store
        self.bus = bus
        self.slots = max(1, slots)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.quotas = TenantQuotas(policy)
        self.queue = FairQueue()
        self.jobs: dict[str, Job] = {}
        self.inflight: dict[str, CellTask] = {}
        self.cell_fn = cell_fn
        self._job_seq = 0
        self._running = 0
        self._wake = asyncio.Event()
        self._stopping = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pump: asyncio.Task | None = None
        self._cell_tasks: set[asyncio.Task] = set()
        self.counters = {"jobs": 0, "cells_submitted": 0,
                         "store_hits": 0, "inflight_hits": 0,
                         "cells_computed": 0, "cells_failed": 0}

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pump = asyncio.create_task(self._pump_loop(),
                                         name="serve-scheduler")

    async def stop(self) -> None:
        self._stopping = True
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
        for task in list(self._cell_tasks):
            task.cancel()

    # -- submission (event-loop thread) ---------------------------------
    def submit(self, request: api.SubmitRequest) -> Job:
        if self._stopping:
            raise api.ShuttingDownError("server is shutting down")
        tenant, spec = request.tenant, request.spec
        keys = [cell_key(cell) for cell in spec.cells]
        # Classify every cell up front (submission is loop-synchronous,
        # so the classification cannot change before we act on it):
        # quota admission charges only genuinely new cells, and the
        # job_accepted event can lead the stream with correct counts.
        plan: list[str] = []
        fresh: set[str] = set()
        for key in keys:
            if key in self.inflight or key in fresh:
                plan.append("inflight")
            elif self.store.contains_key(key):
                plan.append("store")
            else:
                plan.append("new")
                fresh.add(key)
        self.quotas.admit_job(tenant, len(fresh))

        self._job_seq += 1
        job_id = f"job-{self._job_seq:06d}"
        view = api.JobView(job_id=job_id, tenant=tenant, name=spec.name,
                           created=time.time(), state=api.JOB_QUEUED,
                           cells=[api.CellView(cell.cell_id, key)
                                  for cell, key in zip(spec.cells, keys)])
        job = Job(view)
        self.jobs[job_id] = job
        self.quotas.job_started(tenant)
        self.counters["jobs"] += 1
        self.counters["cells_submitted"] += len(keys)

        cached = plan.count("store")
        deduped = plan.count("inflight")
        queued = plan.count("new")
        self.bus.publish(job_id, api.EV_JOB_ACCEPTED, tenant=tenant,
                         cells=len(keys), cached=cached,
                         deduped=deduped, queued=queued)
        for index, (cell, key) in enumerate(zip(spec.cells, keys)):
            cell_view = view.cells[index]
            kind = plan[index]
            if kind == "inflight":
                # In-flight dedup: ride the execution already underway.
                task = self.inflight[key]
                task.add_waiter(job_id, index)
                self.counters["inflight_hits"] += 1
                self.bus.publish(job_id, api.EV_CELL_SCHEDULED,
                                 cell_id=cell_view.cell_id, key=key,
                                 dedup="inflight")
                if task.attempts:          # already started
                    cell_view.state = api.CELL_RUNNING
                    self.bus.publish(job_id, api.EV_CELL_STARTED,
                                     cell_id=cell_view.cell_id, key=key)
            elif kind == "store":
                cell_view.state = api.CELL_CACHED
                self.counters["store_hits"] += 1
                self.bus.publish(job_id, api.EV_CELL_SCHEDULED,
                                 cell_id=cell_view.cell_id, key=key,
                                 dedup="store")
                self.bus.publish(job_id, api.EV_CELL_FINISHED,
                                 cell_id=cell_view.cell_id, key=key,
                                 status=api.CELL_CACHED, wall_time=0.0)
            else:
                task = CellTask(key=key, cell=cell, tenant=tenant)
                task.add_waiter(job_id, index)
                self.inflight[key] = task
                self.queue.push(task)
                self.quotas.cell_queued(tenant)
                self.bus.publish(job_id, api.EV_CELL_SCHEDULED,
                                 cell_id=cell_view.cell_id, key=key,
                                 dedup="none")

        if not job.complete_if_ready():
            view.state = api.JOB_RUNNING if deduped or queued \
                else api.JOB_QUEUED
            self._wake.set()
        else:
            self._finish_job(job)
        return job

    # -- the pump: queue -> pool ---------------------------------------
    async def _pump_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._running < self.slots:
                task = self.queue.pop(eligible=self.quotas.can_run)
                if task is None:
                    break
                self._launch(task)

    def _launch(self, task: CellTask) -> None:
        self._running += 1
        self.quotas.cell_started(task.tenant)
        task.attempts = 1
        for job_id, index in task.waiters:
            job = self.jobs[job_id]
            cell_view = job.view.cells[index]
            cell_view.state = api.CELL_RUNNING
            if job.view.state == api.JOB_QUEUED:
                job.view.state = api.JOB_RUNNING
            self.bus.publish(job_id, api.EV_CELL_STARTED,
                             cell_id=cell_view.cell_id, key=task.key)
        runner = asyncio.create_task(self._run_task(task),
                                     name=f"cell-{task.key[:12]}")
        self._cell_tasks.add(runner)
        runner.add_done_callback(self._cell_tasks.discard)

    async def _run_task(self, task: CellTask) -> None:
        loop = asyncio.get_running_loop()

        def on_retry(attempt: int, error: str) -> None:
            # Called from the worker thread; hop back to the loop.
            loop.call_soon_threadsafe(self._note_retry, task, attempt,
                                      error)

        error = ""
        outcome = None
        try:
            outcome = await asyncio.to_thread(
                run_cell, task.cell, cell_fn=self.cell_fn,
                timeout=self.timeout, retries=self.retries,
                backoff=self.backoff, on_retry=on_retry)
            await asyncio.to_thread(self.store.put, task.cell,
                                    outcome.result, outcome.wall_time)
        except CampaignError as exc:
            error = str(exc)
        except asyncio.CancelledError:
            error = "server shutting down"
        except Exception as exc:  # pragma: no cover - defensive
            error = f"internal error: {exc!r}"
        finally:
            self._running -= 1
            self.quotas.cell_finished(task.tenant)
            self.inflight.pop(task.key, None)
            self._settle(task, outcome, error)
            self._wake.set()

    def _note_retry(self, task: CellTask, attempt: int,
                    error: str) -> None:
        task.attempts = attempt + 1
        last = error.strip().splitlines()[-1] if error.strip() else error
        for job_id, index in task.waiters:
            view = self.jobs[job_id].view.cells[index]
            view.retries = attempt
            self.bus.publish(job_id, api.EV_CELL_RETRY,
                             cell_id=view.cell_id, key=task.key,
                             attempt=attempt, error=last)

    def _settle(self, task: CellTask, outcome, error: str) -> None:
        if outcome is not None:
            self.counters["cells_computed"] += 1
            status, wall = api.CELL_DONE, outcome.wall_time
            summary = result_obs_summary(outcome.result)
        else:
            self.counters["cells_failed"] += 1
            status, wall, summary = api.CELL_FAILED, 0.0, None
        for job_id, index in task.waiters:
            job = self.jobs[job_id]
            cell_view = job.view.cells[index]
            cell_view.state = status
            cell_view.wall_time = wall
            cell_view.error = error
            extra: dict[str, Any] = {"obs": summary} if summary else {}
            if error:
                extra["error"] = error
            self.bus.publish(job_id, api.EV_CELL_FINISHED,
                             cell_id=cell_view.cell_id, key=task.key,
                             status=status, wall_time=wall, **extra)
            if job.complete_if_ready():
                self._finish_job(job)

    def _finish_job(self, job: Job) -> None:
        view = job.view
        self.quotas.job_finished(view.tenant)
        self.bus.publish(view.job_id, api.EV_JOB_FINISHED,
                         state=view.state, counts=view.counts(),
                         wall_time=view.wall_time)
        self.bus.close_job(view.job_id)

    # -- queries --------------------------------------------------------
    def job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise api.NotFoundError(f"unknown job {job_id!r}")
        return job

    async def job_results(self, job_id: str) -> dict[str, Any]:
        """Completed cells' full result payloads, in spec order.

        The view rows are snapshotted loop-synchronously (no await
        touches them), then the store payloads — disk/sqlite reads —
        are fetched in a worker thread so a large job's results never
        stall the event loop."""
        job = self.job(job_id)
        rows = [(cell_view.cell_id, cell_view.key, cell_view.state)
                for cell_view in job.view.cells]
        state = job.view.state
        cells = []
        for cell_id, key, cell_state in rows:
            entry: dict[str, Any] = {"cell_id": cell_id, "key": key,
                                     "state": cell_state}
            if cell_state in (api.CELL_CACHED, api.CELL_DONE):
                entry["result"] = await asyncio.to_thread(
                    self.store.get_result_dict, key)
            cells.append(entry)
        return {"job_id": job_id, "state": state, "cells": cells}

    def describe(self) -> dict[str, Any]:
        return {
            "slots": self.slots,
            "running": self._running,
            "queued": len(self.queue),
            "inflight": len(self.inflight),
            "jobs": {
                "total": len(self.jobs),
                "active": sum(1 for j in self.jobs.values()
                              if not j.finished),
            },
            "counters": dict(self.counters),
            "quotas": {
                "policy": {
                    "max_queued_cells":
                        self.quotas.policy.max_queued_cells,
                    "max_running_cells":
                        self.quotas.policy.max_running_cells,
                    "max_active_jobs":
                        self.quotas.policy.max_active_jobs,
                },
                "tenants": self.quotas.snapshot(),
            },
        }
