"""The shared campaign store: sharded objects + an sqlite WAL index.

This is the storage layer the ROADMAP asked the cache/manifest pair to
be promoted into.  A :class:`CampaignStore` wraps the existing
content-addressed :class:`~repro.campaign.cache.ResultCache` (the
``objects/<key[:2]>/<key>.json`` shards stay byte-identical, so batch
campaigns and the service share one store) and adds what a long-running
multi-writer service needs on top:

* an **sqlite index** (``index.sqlite``, WAL mode) mapping cache key →
  cell identity and bookkeeping, so "what do we have" queries are one
  indexed lookup instead of a directory walk over millions of shards.
  The index is *derived state*: objects are the source of truth, index
  rows are upserted best-effort and :meth:`reindex` rebuilds the table
  from the shards at any time.  A missing or corrupt index therefore
  degrades to a slower store, never a wrong one.
* a bounded in-memory **hot cache** of raw entry bytes, so repeated
  fetches of popular cells (the service's dominant request shape) are
  served at memory speed without touching the filesystem.
* raw-bytes accessors (:meth:`get_raw`) that hand the canonical JSON
  entry straight to the HTTP layer — cache hits are served without a
  decode/re-encode round trip.

Directory layout (``CampaignStore(root)``)::

    root/cache/objects/<key[:2]>/<key>.json   entries (ResultCache-owned)
    root/index.sqlite                          derived index (WAL)
    root/manifest.json                         batch-campaign manifests

which is exactly the batch CLI's campaign-directory layout — pointing
``repro-sim serve --dir`` at an existing campaign directory serves its
cells, and batch runs against the same directory keep the index warm.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from contextlib import suppress
from pathlib import Path
from typing import Any

from repro.campaign.cache import ResultCache, cell_key
from repro.campaign.spec import CellSpec
from repro.sim.results import RunResult

#: Bump when the index table layout changes; mismatched indexes are
#: dropped and rebuilt (they are derived state).
INDEX_SCHEMA_VERSION = 1

_CREATE = """
CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS cells (
    key       TEXT PRIMARY KEY,
    cell_id   TEXT NOT NULL,
    workload  TEXT NOT NULL,
    scheme    TEXT NOT NULL,
    grp       TEXT NOT NULL DEFAULT '',
    wall_time REAL NOT NULL DEFAULT 0.0,
    size      INTEGER NOT NULL DEFAULT 0,
    created   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS cells_by_id ON cells (cell_id);
"""


class HotCache:
    """Bounded LRU of raw entry bytes (the service's fast path)."""

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> bytes | None:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return data

    def put(self, key: str, data: bytes) -> None:
        if len(data) > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = data
            self._bytes += len(data)
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)

    def invalidate(self, key: str) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "bytes": self._bytes,
                    "hits": self.hits, "misses": self.misses}


class CampaignStore:
    """Concurrent-writer-safe result store with an sqlite index.

    Duck-compatible with :class:`ResultCache` where the campaign
    executor needs it (``get``/``put``/``path_for``/``root``/
    ``__contains__``), so ``run_campaign(cache=store)`` works unchanged
    and batch campaigns keep the index warm as they run.
    """

    def __init__(self, root: str | Path,
                 decode: Callable[[dict], Any] = RunResult.from_dict,
                 hot_entries: int = 256) -> None:
        self.base = Path(root)
        self.base.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.base / "cache", decode=decode)
        self.index_path = self.base / "index.sqlite"
        self.hot = HotCache(max_entries=hot_entries)
        self.manifest_path = self.base / "manifest.json"
        self._db_lock = threading.Lock()
        self._db: sqlite3.Connection | None = None
        self._open_index()

    # -- ResultCache duck type -----------------------------------------
    @property
    def root(self) -> Path:
        return self.cache.root

    def path_for(self, key: str) -> Path:
        return self.cache.path_for(key)

    def __contains__(self, cell: CellSpec) -> bool:
        return self.contains_key(cell_key(cell))

    def get(self, cell: CellSpec) -> RunResult | None:
        return self.cache.get(cell)

    def put(self, cell: CellSpec, result: RunResult,
            wall_time: float = 0.0) -> Path:
        path = self.cache.put(cell, result, wall_time)
        self.hot.invalidate(cell_key(cell))
        self._index_cell(cell_key(cell), cell, wall_time, path)
        return path

    # -- service fast paths --------------------------------------------
    def contains_key(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get_raw(self, key: str) -> bytes | None:
        """The raw canonical-JSON entry bytes for ``key``, or ``None``.

        Served from the in-memory hot cache when possible; a disk read
        validates the entry's embedded key before promoting it (a torn
        or foreign file is treated as absent, matching ``get``).
        """
        data = self.hot.get(key)
        if data is not None:
            return data
        try:
            data = self.path_for(key).read_bytes()
        except OSError:
            return None
        try:
            payload = json.loads(data)
            if payload["key"] != key:
                raise ValueError("cache entry key mismatch")
        except (ValueError, KeyError, TypeError):
            self.cache.evict(key)
            return None
        self.hot.put(key, data)
        return data

    def get_result_dict(self, key: str) -> dict[str, Any] | None:
        """The decoded ``result`` payload for ``key``, or ``None``."""
        data = self.get_raw(key)
        if data is None:
            return None
        return json.loads(data)["result"]

    # -- sqlite index ---------------------------------------------------
    def _open_index(self) -> None:
        db = sqlite3.connect(self.index_path, timeout=10.0,
                             check_same_thread=False)
        try:
            db.executescript(_CREATE)
            with suppress(sqlite3.OperationalError):
                db.execute("PRAGMA journal_mode=WAL")
            db.execute("PRAGMA synchronous=NORMAL")
            row = db.execute(
                "SELECT v FROM meta WHERE k='schema'").fetchone()
            if row is None:
                db.execute("INSERT OR REPLACE INTO meta VALUES "
                           "('schema', ?)", (str(INDEX_SCHEMA_VERSION),))
                db.commit()
            elif row[0] != str(INDEX_SCHEMA_VERSION):
                db.executescript(
                    "DROP TABLE cells; DROP TABLE meta;" + _CREATE)
                db.execute("INSERT INTO meta VALUES ('schema', ?)",
                           (str(INDEX_SCHEMA_VERSION),))
                db.commit()
        except sqlite3.Error:
            # A wedged index must never take the store down: run
            # indexless (every query falls back to the filesystem).
            db.close()
            self._db = None
            return
        self._db = db

    def _index_cell(self, key: str, cell: CellSpec, wall_time: float,
                    path: Path) -> None:
        if self._db is None:
            return
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        row = (key, cell.cell_id, cell.workload, cell.config.scheme,
               cell.group, wall_time, size, time.time())
        with self._db_lock, suppress(sqlite3.Error):
            self._db.execute(
                "INSERT INTO cells VALUES (?,?,?,?,?,?,?,?) "
                "ON CONFLICT(key) DO UPDATE SET wall_time=excluded."
                "wall_time, size=excluded.size", row)
            self._db.commit()

    def index_count(self) -> int:
        if self._db is None:
            return len(self.cache)
        with self._db_lock:
            with suppress(sqlite3.Error):
                return self._db.execute(
                    "SELECT COUNT(*) FROM cells").fetchone()[0]
        return len(self.cache)

    def index_rows(self) -> list[dict[str, Any]]:
        if self._db is None:
            return []
        with self._db_lock:
            cursor = self._db.execute(
                "SELECT key, cell_id, workload, scheme, grp, wall_time, "
                "size, created FROM cells ORDER BY cell_id")
            names = [c[0] for c in cursor.description]
            return [dict(zip(names, row)) for row in cursor.fetchall()]

    def reindex(self) -> int:
        """Rebuild the index from the object shards; returns row count.

        The recovery path for a deleted/corrupt index and the adoption
        path for a store populated by pre-index batch campaigns.
        """
        if self._db is None:
            self._open_index()
        if self._db is None:
            return 0
        rows = []
        for path in self.cache.iter_paths():
            try:
                payload = json.loads(path.read_text())
                cell = CellSpec.from_dict(payload["cell"])
                rows.append((payload["key"], cell.cell_id, cell.workload,
                             cell.config.scheme, cell.group,
                             payload.get("wall_time", 0.0),
                             path.stat().st_size, time.time()))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        with self._db_lock:
            self._db.execute("DELETE FROM cells")
            self._db.executemany(
                "INSERT OR REPLACE INTO cells VALUES (?,?,?,?,?,?,?,?)",
                rows)
            self._db.commit()
        return len(rows)

    def journal_mode(self) -> str:
        if self._db is None:
            return "none"
        with self._db_lock:
            return self._db.execute("PRAGMA journal_mode").fetchone()[0]

    def stats(self) -> dict[str, Any]:
        return {"objects": self.index_count(),
                "hot": self.hot.stats(),
                "journal_mode": self.journal_mode(),
                "root": str(self.base)}

    def close(self) -> None:
        if self._db is not None:
            with suppress(sqlite3.Error):
                self._db.close()
            self._db = None
