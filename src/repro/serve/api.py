"""Wire schemas for the simulation service.

Everything that crosses the HTTP boundary is defined here — request
validation, job views, error payloads and the NDJSON event schema — so
the server (:mod:`repro.serve.app`), the client
(:mod:`repro.serve.client`), the tests and the CI smoke validator all
agree on one vocabulary without importing each other.

The API surface (see docs/serving.md for examples)::

    GET  /healthz                    liveness + store summary
    GET  /v1/stats                   queue/quota/store/job counters
    POST /v1/campaigns               submit a CampaignSpec grid
    GET  /v1/campaigns/<job>         job status (counts + per-cell state)
    GET  /v1/campaigns/<job>/results completed results, spec order
    GET  /v1/campaigns/<job>/events  NDJSON (or SSE) progress stream
    GET  /v1/cells/<key>             one cached entry by cache key

Errors are JSON ``{"error": <code>, "detail": <human text>}`` with the
HTTP status carrying the class (400 bad request, 404 unknown, 413 too
large, 429 quota exceeded, 503 shutting down).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.campaign.spec import CampaignSpec
from repro.errors import ReproError

#: Reject absurd submissions outright; a grid this big belongs in
#: several jobs (and keeps one tenant from parking a day of work in
#: a single quota charge).
MAX_CELLS_PER_JOB = 4096

#: Job lifecycle states (terminal: ``done``/``failed``).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Cell lifecycle states within a job.
CELL_WAITING = "waiting"
CELL_RUNNING = "running"
CELL_CACHED = "cached"
CELL_DONE = "done"
CELL_FAILED = "failed"
CELL_STATES = (CELL_WAITING, CELL_RUNNING, CELL_CACHED, CELL_DONE,
               CELL_FAILED)

#: NDJSON event vocabulary (one object per line; see EVENT_FIELDS).
EV_JOB_ACCEPTED = "job_accepted"
EV_CELL_SCHEDULED = "cell_scheduled"
EV_CELL_STARTED = "cell_started"
EV_CELL_RETRY = "cell_retry"
EV_CELL_FINISHED = "cell_finished"
EV_JOB_FINISHED = "job_finished"
EVENT_TYPES = (EV_JOB_ACCEPTED, EV_CELL_SCHEDULED, EV_CELL_STARTED,
               EV_CELL_RETRY, EV_CELL_FINISHED, EV_JOB_FINISHED)

#: Required fields for every event, plus per-type extras.  This *is*
#: the schema the CI smoke job validates streamed files against.
EVENT_FIELDS = {
    "*": ("seq", "ts", "event", "job"),
    EV_JOB_ACCEPTED: ("tenant", "cells", "cached", "deduped", "queued"),
    EV_CELL_SCHEDULED: ("cell_id", "key", "dedup"),
    EV_CELL_STARTED: ("cell_id", "key"),
    EV_CELL_RETRY: ("cell_id", "key", "attempt", "error"),
    EV_CELL_FINISHED: ("cell_id", "key", "status", "wall_time"),
    EV_JOB_FINISHED: ("state", "counts", "wall_time"),
}


class ServeError(ReproError):
    """An HTTP-mappable service error."""

    status = 400
    code = "bad_request"

    def to_dict(self) -> dict[str, str]:
        return {"error": self.code, "detail": str(self)}


class NotFoundError(ServeError):
    status = 404
    code = "not_found"


class TooLargeError(ServeError):
    status = 413
    code = "too_large"


class ShuttingDownError(ServeError):
    status = 503
    code = "shutting_down"


@dataclass(frozen=True)
class SubmitRequest:
    """A validated ``POST /v1/campaigns`` body."""

    tenant: str
    spec: CampaignSpec

    @classmethod
    def from_dict(cls, data: Any) -> "SubmitRequest":
        if not isinstance(data, dict):
            raise ServeError("request body must be a JSON object")
        tenant = data.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant \
                or len(tenant) > 64 or "/" in tenant:
            raise ServeError(
                "tenant must be a short string without '/'")
        raw_spec = data.get("spec")
        if not isinstance(raw_spec, dict):
            raise ServeError("missing 'spec' (a CampaignSpec object)")
        try:
            spec = CampaignSpec.from_dict(raw_spec)
        except ReproError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ServeError(f"malformed CampaignSpec: {exc}") from exc
        if not spec.cells:
            raise ServeError("spec has no cells")
        if len(spec.cells) > MAX_CELLS_PER_JOB:
            raise TooLargeError(
                f"{len(spec.cells)} cells exceeds the per-job limit "
                f"of {MAX_CELLS_PER_JOB}")
        return cls(tenant=tenant, spec=spec)


@dataclass
class CellView:
    """One cell's state inside a job (the status endpoint's rows)."""

    cell_id: str
    key: str
    state: str = CELL_WAITING
    wall_time: float = 0.0
    retries: int = 0
    error: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"cell_id": self.cell_id, "key": self.key,
                "state": self.state, "wall_time": self.wall_time,
                "retries": self.retries, "error": self.error}


@dataclass
class JobView:
    """The job-status payload."""

    job_id: str
    tenant: str
    name: str
    created: float
    state: str
    cells: list[CellView] = field(default_factory=list)
    wall_time: float = 0.0

    def counts(self) -> dict[str, int]:
        out = {state: 0 for state in CELL_STATES}
        for cell in self.cells:
            out[cell.state] += 1
        out["total"] = len(self.cells)
        return out

    def to_dict(self, with_cells: bool = True) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "job_id": self.job_id, "tenant": self.tenant,
            "name": self.name, "created": self.created,
            "state": self.state, "counts": self.counts(),
            "wall_time": self.wall_time,
        }
        if with_cells:
            payload["cells"] = [cell.to_dict() for cell in self.cells]
        return payload


def validate_event(event: Any) -> None:
    """Raise ``ValueError`` unless ``event`` matches the NDJSON schema."""
    if not isinstance(event, dict):
        raise ValueError("event must be a JSON object")
    for name in EVENT_FIELDS["*"]:
        if name not in event:
            raise ValueError(f"event missing required field {name!r}")
    kind = event["event"]
    if kind not in EVENT_TYPES:
        raise ValueError(f"unknown event type {kind!r}")
    if not isinstance(event["seq"], int) or event["seq"] < 1:
        raise ValueError("seq must be a positive integer")
    if not isinstance(event["ts"], (int, float)):
        raise ValueError("ts must be a number")
    for name in EVENT_FIELDS[kind]:
        if name not in event:
            raise ValueError(
                f"{kind} event missing required field {name!r}")
    if kind == EV_CELL_FINISHED \
            and event["status"] not in (CELL_CACHED, CELL_DONE,
                                        CELL_FAILED):
        raise ValueError(
            f"cell_finished status {event['status']!r} invalid")
    if kind == EV_JOB_FINISHED \
            and event["state"] not in (JOB_DONE, JOB_FAILED):
        raise ValueError(
            f"job_finished state {event['state']!r} invalid")
