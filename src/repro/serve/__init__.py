"""Simulation-as-a-service: the async layer over the campaign engine.

``repro.serve`` turns the batch campaign engine (:mod:`repro.campaign`)
into a long-running shared service — the ROADMAP's "millions of users"
architecture, where most requests are cache hits on a shared store and
only novel cells burn CPU:

* :mod:`repro.serve.storage` — :class:`CampaignStore`, the promoted
  storage layer: the content-addressed shards plus an sqlite WAL index
  and an in-memory hot cache, safe under concurrent writers.
* :mod:`repro.serve.queue` / :mod:`repro.serve.quotas` — fair
  round-robin queueing across tenants with quota admission control.
* :mod:`repro.serve.workers` — the asyncio scheduler + bounded worker
  pool; per-cell timeout/retry semantics come verbatim from
  :func:`repro.campaign.executor.run_cell`.
* :mod:`repro.serve.events` — progress streaming (NDJSON/SSE) with
  per-cell :mod:`repro.obs` attribution and latency-tail summaries.
* :mod:`repro.serve.app` / :mod:`repro.serve.api` /
  :mod:`repro.serve.client` — the stdlib HTTP server, its wire
  schemas, and the blocking client behind ``repro-sim submit/fetch``.

See docs/serving.md for the API walk-through and design rationale.
"""

from repro.serve.api import (
    JobView,
    ServeError,
    SubmitRequest,
    validate_event,
)
from repro.serve.app import ServeConfig, ServerApp, run_server
from repro.serve.client import ClientError, ServeClient, discover_url
from repro.serve.events import EventBus, result_obs_summary
from repro.serve.queue import CellTask, FairQueue
from repro.serve.quotas import QuotaExceeded, QuotaPolicy, TenantQuotas
from repro.serve.storage import CampaignStore, HotCache
from repro.serve.workers import Scheduler

__all__ = [
    "CampaignStore",
    "CellTask",
    "ClientError",
    "EventBus",
    "FairQueue",
    "HotCache",
    "JobView",
    "QuotaExceeded",
    "QuotaPolicy",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerApp",
    "SubmitRequest",
    "TenantQuotas",
    "discover_url",
    "result_obs_summary",
    "run_server",
    "validate_event",
]
