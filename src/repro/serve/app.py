"""The asyncio HTTP front end: ``repro-sim serve``.

A deliberately small, dependency-free HTTP/1.1 server over
``asyncio.start_server`` — the request grammar the service needs (short
JSON bodies in, JSON or a streamed NDJSON/SSE body out) does not
justify a framework, and the ROADMAP forbids new hard dependencies.
Every response closes its connection (``Connection: close``), which
keeps the protocol state machine one-shot and lets the event stream be
written without chunked encoding: stream until job end (or client
disconnect), then close.

The app owns the subsystem wiring: one shared
:class:`~repro.serve.storage.CampaignStore`, one
:class:`~repro.serve.events.EventBus`, one
:class:`~repro.serve.workers.Scheduler`.  On startup it writes
``server.json`` (host, port, pid) into the store directory so clients
— and the kill/restart e2e test — can discover a dynamically-bound
port.  Crash safety is the store's atomic-replace discipline: SIGKILL
at any instant loses only in-flight cells, and a restarted server
serves every cell that was durably put.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

import repro
from repro.campaign.executor import CellFn, execute_cell
from repro.serve import api, metrics
from repro.serve.events import EventBus, encode_ndjson, encode_sse
from repro.serve.metrics import render_metrics
from repro.serve.quotas import QuotaPolicy
from repro.serve.storage import CampaignStore
from repro.serve.workers import Scheduler
from repro.util.atomic import atomic_write_text

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro-sim serve`` can configure."""

    root: str | Path = ".repro-serve"
    host: str = "127.0.0.1"
    port: int = 8023
    slots: int = 2
    timeout: float | None = None
    retries: int | None = None
    backoff: float = 0.5
    max_queued_cells: int = 1024
    max_running_cells: int = 4
    max_active_jobs: int = 16
    hot_entries: int = 256

    def policy(self) -> QuotaPolicy:
        return QuotaPolicy(max_queued_cells=self.max_queued_cells,
                           max_running_cells=self.max_running_cells,
                           max_active_jobs=self.max_active_jobs)


class ServerApp:
    """Wiring + HTTP handling for one service instance."""

    def __init__(self, config: ServeConfig,
                 cell_fn: CellFn = execute_cell) -> None:
        self.config = config
        self.store = CampaignStore(config.root,
                                   hot_entries=config.hot_entries)
        self.bus = EventBus()
        self.scheduler = Scheduler(
            self.store, self.bus, slots=config.slots,
            timeout=config.timeout, retries=config.retries,
            backoff=config.backoff, policy=config.policy(),
            cell_fn=cell_fn)
        self._server: asyncio.base_events.Server | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        # File IO (and its fsyncs) happens off the loop.
        await asyncio.to_thread(self._write_discovery)

    def _write_discovery(self) -> None:
        info = {"host": self.config.host, "port": self.port,
                "pid": os.getpid(), "version": repro.__version__}
        path = Path(self.config.root) / "server.json"
        # Atomic publication: a crashed start never leaves a torn
        # server.json for a discovery client to misparse.
        atomic_write_text(path, json.dumps(info, indent=1,
                                           sort_keys=True) + "\n")

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.stop()
        await asyncio.to_thread(self.store.close)
        with suppress(OSError):
            (Path(self.config.root) / "server.json").unlink()

    async def serve_forever(self) -> None:
        assert_server = self._server
        if assert_server is None:
            raise api.ServeError("start() the app first")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        await self.stop()

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            method, target, body = await self._read_request(reader)
            await self._dispatch(method, target, body, writer)
        except api.ServeError as exc:
            with suppress(Exception):
                await self._send_json(writer, exc.status, exc.to_dict())
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        except Exception as exc:  # pragma: no cover - defensive
            with suppress(Exception):
                await self._send_json(
                    writer, 500,
                    {"error": "internal", "detail": repr(exc)})
        finally:
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEADER_BYTES:
            raise api.TooLargeError("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise api.ServeError(f"malformed request line {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise api.TooLargeError(
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    async def _send_json(self, writer: asyncio.StreamWriter,
                         status: int, payload: Any) -> None:
        body = (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode()
        await self._send_raw(writer, status, body, "application/json")

    async def _send_raw(self, writer: asyncio.StreamWriter, status: int,
                        body: bytes, content_type: str) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  413: "Payload Too Large", 429: "Too Many Requests",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing --------------------------------------------------------
    async def _dispatch(self, method: str, target: str, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        url = urlsplit(target)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if method == "GET" and parts == ["healthz"]:
            # store.stats() queries the sqlite index — off the loop.
            store_stats = await asyncio.to_thread(self.store.stats)
            await self._send_json(writer, 200, {
                "status": "ok", "version": repro.__version__,
                "pid": os.getpid(), "store": store_stats})
            return
        if method == "GET" and parts == ["v1", "stats"]:
            store_stats = await asyncio.to_thread(self.store.stats)
            await self._send_json(writer, 200, {
                "scheduler": self.scheduler.describe(),
                "store": store_stats})
            return
        if method == "GET" and parts == ["v1", "metrics"]:
            # The sqlite object count is fetched off the loop; the
            # scheduler/bus gauges are loop-owned state and must be
            # snapshotted *on* the loop, so render_metrics itself
            # stays loop-synchronous.
            objects = await asyncio.to_thread(self.store.index_count)
            text = render_metrics(self.scheduler, self.store, self.bus,
                                  store_objects=objects)
            await self._send_raw(writer, 200, text.encode(),
                                 metrics.CONTENT_TYPE)
            return
        if parts[:2] == ["v1", "campaigns"]:
            await self._campaigns(method, parts[2:], body, writer,
                                  query)
            return
        if method == "GET" and parts[:2] == ["v1", "cells"] \
                and len(parts) == 3:
            await self._cell(parts[2], writer)
            return
        raise api.NotFoundError(f"no route for {method} {url.path}")

    async def _campaigns(self, method: str, rest: list[str],
                         body: bytes, writer: asyncio.StreamWriter,
                         query: dict[str, str]) -> None:
        if method == "POST" and not rest:
            try:
                payload = json.loads(body or b"{}")
            except ValueError as exc:
                raise api.ServeError(f"body is not JSON: {exc}")
            request = api.SubmitRequest.from_dict(payload)
            job = self.scheduler.submit(request)
            await self._send_json(writer, 202,
                                  job.view.to_dict(with_cells=False))
            return
        if method != "GET" or not rest:
            raise api.NotFoundError("campaigns: POST /, GET /<job>[...]")
        job = self.scheduler.job(rest[0])
        if len(rest) == 1:
            with_cells = query.get("cells", "1") != "0"
            await self._send_json(writer, 200,
                                  job.view.to_dict(with_cells))
            return
        if rest[1] == "results":
            await self._send_json(writer, 200,
                                  await self.scheduler.job_results(
                                      rest[0]))
            return
        if rest[1] == "events":
            await self._stream_events(job.view.job_id, writer, query)
            return
        raise api.NotFoundError(f"unknown campaign view {rest[1]!r}")

    async def _cell(self, key: str, writer: asyncio.StreamWriter
                    ) -> None:
        data = await asyncio.to_thread(self.store.get_raw, key)
        if data is None:
            raise api.NotFoundError(f"no cached cell {key[:16]}…")
        await self._send_raw(writer, 200, data, "application/json")

    async def _stream_events(self, job_id: str,
                             writer: asyncio.StreamWriter,
                             query: dict[str, str]) -> None:
        sse = query.get("format") == "sse"
        follow = query.get("follow", "1") != "0"
        encode = encode_sse if sse else encode_ndjson
        content_type = "text/event-stream" if sse \
            else "application/x-ndjson"
        head = (f"HTTP/1.1 200 OK\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Cache-Control: no-store\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head)
        await writer.drain()
        subscription = self.bus.subscribe(job_id)
        try:
            if not follow:
                for event in self.bus.history(job_id):
                    writer.write(encode(event))
                await writer.drain()
                return
            while True:
                event = await subscription.next()
                if event is None:
                    break
                writer.write(encode(event))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            subscription.close()


async def run_server(config: ServeConfig,
                     cell_fn: CellFn = execute_cell) -> None:
    """Start the app and block until SIGINT/SIGTERM."""
    app = ServerApp(config, cell_fn=cell_fn)
    await app.start()
    print(f"repro.serve listening on "
          f"http://{config.host}:{app.port}  (store: {config.root}, "
          f"slots: {config.slots})", flush=True)
    await app.serve_forever()
