"""System checkpointing: save a fully warmed simulation to disk and
resume it later.

Long experiments spend most of their time warming caches and growing
structures; checkpointing lets a warmed :class:`~repro.sim.system.System`
(or :class:`~repro.sim.multicore.MultiProgramSystem`) be captured once
and branched many times — e.g. sweep hash latencies from one warmed
state, or replay the same pre-crash state through different attacks.

Everything in the simulator is plain Python state (the functional-first
design), so pickling is faithful: media contents, cache payloads, root
registers, trackers, statistics and cycle counts all round-trip.  A
format tag guards against loading checkpoints across incompatible
versions.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any

from repro.errors import ConfigError

FORMAT = "repro-checkpoint-1"


def save_checkpoint(system: Any, path: str | Path) -> None:
    """Pickle a simulated system (and everything it owns) to ``path``."""
    blob = pickle.dumps({"format": FORMAT, "system": system},
                        protocol=pickle.HIGHEST_PROTOCOL)
    Path(path).write_bytes(blob)


def load_checkpoint(path: str | Path) -> Any:
    """Restore a system saved by :func:`save_checkpoint`."""
    try:
        payload = pickle.loads(Path(path).read_bytes())
    except (pickle.UnpicklingError, EOFError) as exc:
        raise ConfigError(f"{path}: not a repro checkpoint") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise ConfigError(
            f"{path}: unknown checkpoint format "
            f"{payload.get('format') if isinstance(payload, dict) else '?'}")
    return payload["system"]


def fork(system: Any) -> Any:
    """An in-memory deep copy of a system — branch one warmed state into
    several divergent futures without touching disk."""
    return pickle.loads(pickle.dumps(system,
                                     protocol=pickle.HIGHEST_PROTOCOL))
