"""System-level simulation: configuration (Table II), the in-order CPU
timing model, the full system (CPU + caches + secure memory controller +
NVM), and the experiment driver."""

from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.sim.driver import run_workload
from repro.sim.multicore import MultiProgramSystem, partitioned_workloads
from repro.sim.checkpoint import fork, load_checkpoint, save_checkpoint

__all__ = [
    "SystemConfig",
    "RunResult",
    "System",
    "run_workload",
    "MultiProgramSystem",
    "partitioned_workloads",
    "fork",
    "load_checkpoint",
    "save_checkpoint",
]
