"""The experiment driver: run one workload on one configuration.

Mirrors the paper's methodology (§V-A): each application is warmed up
before measurement (they warm 10M instructions before a 5B-instruction
region; we scale both down), statistics reset at the warm-up boundary, and
a :class:`~repro.sim.results.RunResult` comes back.

Workloads are anything that can produce a :class:`MemoryAccess` iterable —
the :mod:`repro.workloads` generators, a recorded list, or a custom
generator.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from itertools import islice

from repro.mem.trace import MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.sim.system import System

TraceSource = Iterable[MemoryAccess] | Callable[[], Iterable[MemoryAccess]]


def _as_iterator(source: TraceSource) -> Iterable[MemoryAccess]:
    if callable(source):
        return iter(source())
    return iter(source)


def run_workload(config: SystemConfig, trace: TraceSource,
                 workload_name: str = "workload",
                 warmup_accesses: int = 0,
                 max_accesses: int | None = None,
                 system: System | None = None,
                 recorder=None, engine: str = "auto") -> RunResult:
    """Run ``trace`` on a freshly built (or provided) system.

    ``warmup_accesses`` records are executed first, then statistics are
    reset so caches/WPQ state carries over but measurements start clean.
    ``max_accesses`` bounds the measured region (useful for unbounded
    generators).  ``recorder`` (a :class:`repro.obs.TraceRecorder`)
    enables event tracing on the freshly built system; ``engine``
    selects the access-loop implementation (see :class:`System`).  Both
    are ignored when ``system`` is supplied (the caller already wired
    them in).
    """
    sim = system or System(config, recorder=recorder, engine=engine)
    iterator = _as_iterator(trace)
    if warmup_accesses:
        sim.run(islice(iterator, warmup_accesses))
        sim.reset_stats()
    if max_accesses is not None:
        iterator = islice(iterator, max_accesses)
    sim.run(iterator)
    return sim.result(workload_name)


def run_schemes(config: SystemConfig, schemes: list[str],
                trace_factory: Callable[[], Iterable[MemoryAccess]],
                workload_name: str = "workload",
                warmup_accesses: int = 0,
                max_accesses: int | None = None,
                engine: str = "auto") -> dict[str, RunResult]:
    """Run the *same* workload across several schemes (the Fig 9/10
    comparison shape).  ``trace_factory`` must return a fresh, identical
    trace per call — pass a deterministic generator factory."""
    results: dict[str, RunResult] = {}
    for scheme in schemes:
        results[scheme] = run_workload(
            config.with_(scheme=scheme), trace_factory,
            workload_name=workload_name,
            warmup_accesses=warmup_accesses,
            max_accesses=max_accesses,
            engine=engine)
    return results
