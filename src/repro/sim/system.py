"""The full simulated system: in-order CPU + cache hierarchy + secure
memory controller + NVM (paper Table II).

The CPU model is deliberately simple — the schemes being compared differ
only in memory-controller behaviour, so a one-instruction-per-cycle core
with blocking loads and persist fences captures every first-order effect
the paper measures:

* non-memory instructions retire at 1 IPC (the ``gap`` field of each
  trace record);
* loads that miss L1/L2/L3 stall the core for the controller's read
  latency (array read overlapped with the counter-fetch chain);
* plain stores never stall (store buffer) — their cost surfaces later as
  LLC writebacks processed off the critical path;
* persists (store + clwb + sfence) stall for the write's critical path —
  the quantity the schemes fight over — plus any WPQ back-pressure.

A :meth:`crash` power-fails the machine: CPU caches vanish (their dirty
lines flushed first under eADR), the controller handles the ADR/eADR
metadata semantics, and :meth:`recover` asks the scheme to re-establish
integrity.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import AddressError, ConfigError
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.trace import AccessType, MemoryAccess
from repro.obs import events as ev
from repro.obs.attribution import AttributionLedger, check_attribution
from repro.obs.recorder import NULL_RECORDER
from repro.secure import make_controller
from repro.secure.base import RecoveryReport
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.util.stats import StatGroup


class System:
    """One simulated machine running one workload.

    ``recorder`` is an optional :class:`repro.obs.TraceRecorder`; it is
    threaded through the controller into the WPQ/NVM/hash engine rather
    than stored in :class:`SystemConfig`, which stays a pure, hashable
    experiment description (campaign cache keys depend on it).

    ``engine`` selects the access-loop implementation and, like the
    recorder, deliberately lives outside :class:`SystemConfig` — it can
    never change a result, only how fast it is produced:

    * ``"auto"`` (default): run eligible traces through the epoch-batched
      engine (:mod:`repro.sim.epoch`); anything it cannot reproduce
      byte-identically — recorders, sanitizer seams, crash knobs,
      scalar-only environments — silently takes the scalar loop.
    * ``"scalar"``: always the per-access reference loop.
    * ``"epoch"``: require the epoch engine; raises ``ConfigError``
      naming the blocker if the run is ineligible (used by the
      equivalence tests so a fallback can't masquerade as coverage).
    """

    def __init__(self, config: SystemConfig, recorder=None,
                 engine: str = "auto") -> None:
        if engine not in ("auto", "scalar", "epoch"):
            raise ConfigError(
                f"unknown engine {engine!r}; choose auto, scalar or epoch")
        self.engine = engine
        self.config = config
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.controller = make_controller(config, recorder=self.obs)
        self.stats = StatGroup("system")
        self.hierarchy = CacheHierarchy(config.hierarchy,
                                        self.stats.child("cpu_caches"),
                                        recorder=self.obs)
        self.cycle = 0
        self._cycle_at_reset = 0
        #: Where every simulated cycle went; checked against ``cycles``
        #: when a result is built (the sum must be exact).
        self.attribution = AttributionLedger()
        self._instructions = self.stats.counter("instructions")
        self._loads = self.stats.counter("loads")
        self._stores = self.stats.counter("stores")
        self._persists = self.stats.counter("persists")
        self._load_stalls = self.stats.counter("load_stall_cycles")
        self._persist_stalls = self.stats.counter("persist_stall_cycles")
        # Hot-loop hoists: the address map is immutable and the data
        # region bound is a config constant, so bind them once instead of
        # three attribute hops per retired access.  (Controller methods
        # are looked up per call — the sanitizer patches those seams.)
        self._line_of = self.controller.amap.line_of
        self._data_capacity = config.data_capacity

    # ------------------------------------------------------------------
    def execute(self, access: MemoryAccess) -> None:
        """Retire one trace record (gap instructions + the memory op)."""
        attr = self.attribution.cycles
        retired = access.gap + 1
        self.cycle += retired
        attr["cpu"] += retired
        self._instructions.value += retired
        line = self._line_of(access.addr)
        if line >= self._data_capacity:
            raise AddressError(
                f"trace address {access.addr:#x} beyond the data region")
        if access.kind is AccessType.READ:
            self._loads.value += 1
            result = self.hierarchy.load(line)
            if result.miss_to_memory:
                start = self.cycle
                # An IntegrityError here is a detected attack: the run
                # aborts, so the charged-but-unemitted cpu cycles never
                # reach a report.
                outcome = self.controller.read_data(  # reprolint: disable=exception-unsafe-attribution
                    line, self.cycle)
                self.cycle += outcome.latency
                self._load_stalls.value += outcome.latency
                # latency == max(array, verify-chain) + flush: the
                # overlapped max goes to whichever side dominated.
                attr["read_flush"] += outcome.flush_cycles
                overlapped = outcome.latency - outcome.flush_cycles
                if outcome.counter_fetch_latency > outcome.array_latency:
                    attr["read_verify"] += overlapped
                else:
                    attr["read_media"] += overlapped
                if self.obs.enabled and outcome.latency:
                    self.obs.span(ev.EV_READ, ev.TRACK_CPU, start,
                                  outcome.latency, addr=line)
        elif access.kind is AccessType.WRITE:
            self._stores.value += 1
            result = self.hierarchy.store(line)
            if access.data is not None:
                # Remember the payload so the eventual writeback carries it.
                self.controller._plaintexts[line] = \
                    self.controller._payload_for(line, access.data)
        else:
            self._persists.value += 1
            result = self.hierarchy.persist(line)
            start = self.cycle
            # Same modelling intent as the read path: a raise aborts
            # the simulation, no report is rendered from the ledger.
            outcome = self.controller.write_data(  # reprolint: disable=exception-unsafe-attribution
                line, access.data, self.cycle, persist=True)
            self.cycle += outcome.cpu_stall
            self._persist_stalls.value += outcome.cpu_stall
            # cpu_stall == fetch + overflow + scheme + flush + wpq_stall.
            attr["write_fetch"] += outcome.fetch_latency
            attr["write_overflow"] += outcome.overflow_cycles
            attr["write_scheme"] += outcome.scheme_cycles
            attr["write_flush"] += outcome.flush_cycles
            attr["write_wpq"] += outcome.wpq_stall
            if self.obs.enabled and outcome.cpu_stall:
                self.obs.span(ev.EV_PERSIST, ev.TRACK_CPU, start,
                              outcome.cpu_stall, addr=line)
        for writeback in result.writebacks:
            if writeback < self._data_capacity:
                self.controller.write_data(writeback, None, self.cycle,
                                           persist=False)
        self.controller.tick(self.cycle)

    def run(self, trace: Iterable[MemoryAccess]) -> None:
        if self.engine != "scalar":
            # Lazy import: the epoch engine pulls in the scheme stack
            # and (optionally) numpy; the scalar path never needs it.
            from repro.sim import epoch
            if self.engine == "epoch":
                reason = epoch.ineligible_reason(self)
                if reason is not None:
                    raise ConfigError(f"epoch engine ineligible: {reason}")
            if epoch.run_trace(self, trace):
                return
        for access in trace:
            self.execute(access)

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure.  Under eADR the CPU caches' dirty data lines are
        flushed through the normal write path first (eADR moves bytes; the
        encryption pads were already generated at store time); without it
        they are simply lost.  Metadata semantics live in the controller."""
        self.controller.prepare_crash()
        dirty = self.hierarchy.drop_all()
        if self.config.eadr:
            for line in dirty:
                if line < self.config.data_capacity:
                    self.controller.write_data(line, None, self.cycle,
                                               persist=False)
        self.controller.crash()

    def recover(self) -> RecoveryReport:
        report = self.controller.recover()
        if self.obs.enabled:
            # Recovery runs outside the measured cycle stream; its span is
            # sized from the report's wall-clock estimate at the 2 GHz
            # clock of Table II.
            dur = max(1, int(report.recovery_seconds * 2e9))
            self.obs.span(ev.EV_RECOVERY, ev.TRACK_RECOVERY, self.cycle,
                          dur, scheme=report.scheme, success=report.success,
                          metadata_reads=report.metadata_reads)
        return report

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all statistics (warm-up boundary); state is untouched."""
        self.stats.reset()
        self.controller.stats.reset()
        self.attribution.reset()
        self._cycle_at_reset = self.cycle

    def result(self, workload: str = "") -> RunResult:
        ctl = self.controller
        cycles = self.cycle - self._cycle_at_reset
        attribution = self.attribution.to_dict()
        check_attribution(attribution, cycles,
                          context=f"{ctl.name}/{workload or 'workload'}")
        histograms = {name: hist.to_dict() for name, hist
                      in ctl.stats.histograms().items()}
        return RunResult(
            workload=workload,
            scheme=ctl.name,
            cycles=cycles,
            instructions=self._instructions.value,
            loads=self._loads.value,
            stores=self._stores.value,
            persists=self._persists.value,
            load_stall_cycles=self._load_stalls.value,
            persist_stall_cycles=self._persist_stalls.value,
            avg_write_latency=ctl.stats.histogram("write_latency").mean,
            avg_read_latency=ctl.stats.histogram("read_latency").mean,
            nvm_data_reads=ctl.stats.counter("data_reads").value,
            nvm_data_writes=ctl.stats.counter("data_writes").value,
            nvm_meta_reads=ctl.stats.counter("meta_reads").value,
            nvm_meta_writes=ctl.stats.counter("meta_writes").value,
            hashes=ctl.hash_engine.stats.counter("hashes").value,
            stats={**self.stats.as_dict(), **ctl.stats_dict()},
            attribution=attribution,
            histograms=histograms,
        )
