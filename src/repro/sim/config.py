"""System configuration — the simulator's rendition of the paper's
Table II.

Defaults follow the paper wherever the trace-driven model has a matching
knob: 2 GHz CPU, the L1/L2/L3 geometry, the PCM latency tuple, a 64+10
entry WPQ, a 256 KB 8-way metadata cache, an 8-ary SIT, and a 40-cycle
hash latency (sweepable to 20/80/160 for the sensitivity study).

The paper simulates 16 GB of PCM, giving a 9-level SIT.  Simulating 16 GB
of *traffic* is pointless at trace scale; instead ``data_capacity``
defaults to 64 MB while ``tree_levels`` can force the paper's 9-level tree
geometry so branch lengths (the quantity that separates the schemes)
match the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.errors import ConfigError
from repro.mem.address import AddressMap
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.timing import PCMTiming, TimingModel


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`repro.sim.system.System`.

    Deliberately *not* here: the :mod:`repro.obs` trace recorder.  A
    config is a pure, hashable experiment description — campaign cache
    keys and worker IPC serialize it — so live objects like recorders
    are passed to :class:`System`/``make_controller`` as constructor
    arguments instead.
    """

    scheme: str = "scue"
    data_capacity: int = 64 * 1024 * 1024
    tree_levels: int | None = None
    #: Integrity-tree fan-out: 8 (the paper's SIT), or 16/32 for
    #: VAULT/MorphCtr-style wide nodes with narrower counters (§VII).
    tree_arity: int = 8
    metadata_cache_size: int = 256 * 1024
    metadata_cache_ways: int = 8
    wpq_data_entries: int = 64
    wpq_metadata_entries: int = 10
    hash_latency: int = 40
    pcm: PCMTiming = field(default_factory=PCMTiming)
    cpu_ghz: float = 2.0
    nvm_banks: int = 8
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    #: Persist the counter block together with the data on every data
    #: persist (SuperMem-style write-through; the consistency premise SCUE
    #: builds on — see DESIGN.md §4).
    leaf_write_through: bool = True
    #: eADR: flush dirty *cached* metadata (with stale HMACs — eADR cannot
    #: hash) to NVM on crash, in addition to the always-on ADR WPQ flush.
    eadr: bool = False
    #: Fast-recovery tracker for SCUE: "none", "star" (bitmap lines),
    #: "agit" (address-only shadow table) or "asit" (Anubis's original
    #: content-journalling shadow table, the expensive comparison point).
    recovery_tracker: str = "none"
    #: Osiris-style relaxed counter persistence (SCUE only, §VII): 0
    #: disables it; N > 0 forces a counter-block write-back every N
    #: bumps and recovers the lost tail from data MACs after a crash.
    #: Requires ``leaf_write_through=False``.
    osiris_limit: int = 0
    #: Keep plaintext shadow copies and verify reads against them
    #: (functional checking for tests; off for benchmarks).
    check_data: bool = False
    #: Record per-line NVM write counts (endurance analysis).
    track_wear: bool = False
    mac_key: bytes = b"repro-tree-key"
    cme_key: bytes = b"repro-cme-key"

    def __post_init__(self) -> None:
        if self.hash_latency <= 0:
            raise ConfigError("hash_latency must be positive")
        if self.recovery_tracker not in ("none", "star", "agit", "asit"):
            raise ConfigError(
                f"unknown recovery tracker {self.recovery_tracker!r}")
        if self.osiris_limit < 0:
            raise ConfigError("osiris_limit must be non-negative")
        if self.osiris_limit and self.leaf_write_through:
            raise ConfigError(
                "osiris_limit relaxes counter persistence; set "
                "leaf_write_through=False to enable it")

    # ------------------------------------------------------------------
    def address_map(self) -> AddressMap:
        return AddressMap(self.data_capacity, self.tree_levels,
                          self.tree_arity)

    def timing_model(self) -> TimingModel:
        return TimingModel(self.pcm, self.cpu_ghz, self.nvm_banks)

    def with_(self, **changes: Any) -> "SystemConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Deterministic serialization (campaign cache keys + worker IPC).
    # Field order is the declaration order, nested configs get their own
    # stable dicts, and key bytes are hex strings — so two equal configs
    # always produce equal dicts and equal canonical JSON.
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (PCMTiming, HierarchyConfig)):
                value = value.to_dict()
            elif isinstance(value, bytes):
                value = value.hex()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SystemConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown SystemConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "pcm" in kwargs:
            kwargs["pcm"] = PCMTiming.from_dict(kwargs["pcm"])
        if "hierarchy" in kwargs:
            kwargs["hierarchy"] = \
                HierarchyConfig.from_dict(kwargs["hierarchy"])
        for key in ("mac_key", "cme_key"):
            if isinstance(kwargs.get(key), str):
                kwargs[key] = bytes.fromhex(kwargs[key])
        return cls(**kwargs)

    @classmethod
    def paper_table2(cls, scheme: str = "scue",
                     **overrides: Any) -> "SystemConfig":
        """The closest trace-scale match to the paper's Table II: a
        9-level 8-ary SIT (as for 16 GB PCM) over a 256 MB simulated data
        region, 256 KB metadata cache, 40-cycle hashes."""
        config = cls(scheme=scheme, data_capacity=256 * 1024 * 1024,
                     tree_levels=9)
        return replace(config, **overrides) if overrides else config
