"""Epoch-batched execution engine: the fast path behind the digest oracle.

The scalar path (`System.execute` + the controller's `write_data` /
`read_data`) walks one access at a time through ~175 Python calls.  This
engine runs the same trace in *epochs*: a planner scans ahead over a
bounded window (:data:`EPOCH_WINDOW` rows), groups the window's persists
by their counter-block branch (the interned chains from
`AddressMap.branch_coords` / `branch_addrs`), predicts each row's
post-bump counter state with the vectorized kernels in
`repro.secure.vector`, and pre-seeds the scalar layer's content-keyed
memos (counter images, SCUE leaf seals) in bulk.  An inlined interpreter
then executes the window: it replicates the scalar statement stream —
every counter increment, histogram bucket, memo probe and NVM row-buffer
touch, in the same order with the same values — so the `sha256` result
digests in `BENCH_perf.json` are byte-identical by construction.

The interpreter inlines the whole metadata path: the fetch-and-verify
chain (`_fetch_chain` / `fetch_node`), cache install with its eviction
cascade (`_install`), the per-scheme dirty-victim flush (`_flush_node`),
WPQ enqueue/drain, and the controller tick.  Rare or stateful seams stay
real calls: minor-counter overflows (`_bump_leaf`), eviction writebacks
from the CPU caches (`write_data`), and the not-resident re-dirty path
(`_mark_dirty`).

Why digests cannot drift
------------------------

Two properties carry the equivalence argument:

* **Content-keyed memos are pure.**  The planner only ever *seeds*
  caches (``KeyedMac.memo``, the counter-image memo) whose values are
  pure functions of their keys.  A misprediction (a leaf bumped by an
  eviction writeback, an unplanned overflow) just misses the memo and
  recomputes — the planner can change *when* work happens, never *what*
  is computed.  OTP pads and data MACs are deliberately **not**
  pre-seeded: their cost is the `blake2b` call itself, which batching
  cannot amortise (hashlib has no batch API), so planning them moves
  work without removing it.  The SCUE leaf-seal pipeline is different —
  the scalar 64-iteration counter-image pack dominates there, and
  `pack_counter_images` + `seal_messages` vectorize it exactly.
* **The interpreter is a statement-for-statement transcription** of the
  scalar hot path.  Every inlined statement mutates the same counters,
  memos and media image the scalar code would, in the same order.

Fallback triggers
-----------------

:func:`ineligible_reason` vets the *whole run* before the first access.
Anything the transcription does not model — an attached recorder, the
runtime persist-order sanitizer (which patches the `wpq.enqueue` /
`nvm.write_line` / `_flush_node` seams as instance attributes), crash
machinery knobs (`check_data`, wear tracking, recovery trackers, Osiris
limits, deferred leaves), subclassed components, or a scheme without a
transcribed tail — falls back to the scalar loop, so `repro.crash`, the
explorer and `repro.obs` attribution always see the unchanged event
stream.  Scalar-only environments (no numpy) are ineligible by the same
gate and never import the kernels.
"""

from __future__ import annotations

from hashlib import blake2b
from itertools import islice

from repro.cme import counters as _counters
from repro.cme.counters import MINOR_LIMIT, CounterBlock
from repro.cme.encryption import CMEEngine
from repro.errors import (
    AddressError,
    ConfigError,
    IntegrityError,
    SimulationError,
)
from repro.mem.address import CACHE_LINE_SIZE, AddressMap
from repro.mem.cache import CacheLine, SetAssociativeCache
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.nvm import ZERO_LINE, NVMDevice
from repro.mem.trace import AccessType
from repro.mem.wpq import WPQEntry, WritePendingQueue
from repro.secure import vector
from repro.secure.base import REGISTER_UPDATE_CYCLES, expect_node
from repro.secure.baseline import BaselineController
from repro.secure.bmf import BMFIdealController
from repro.secure.eager import EagerController
from repro.secure.lazy import LazyController
from repro.secure.plp import PLPController
from repro.secure.scue import SCUEController
from repro.tree.hmac_engine import HashEngine
from repro.tree.node import SITNode
from repro.tree.store import SITStore
from repro.util.crypto import KeyedMac, make_otp

#: Trace rows per epoch: the planner's look-ahead window.
EPOCH_WINDOW = 1024
#: Below this many predictable persists in a window, planning costs more
#: than the memo hits save; the interpreter alone still wins.
PLAN_MIN_ROWS = 24

#: Controller classes with a transcribed scheme tail.  Anything else
#: (e.g. the BMT eager-climb family) runs scalar.
_FLAVORS: dict[type, str] = {
    SCUEController: "scue",
    LazyController: "lazy",
    EagerController: "eager",
    PLPController: "plp",
    BMFIdealController: "bmf",
    BaselineController: "baseline",
}

#: Methods the interpreter inlines or depends on: any of these appearing
#: as an *instance* attribute (the sanitizer and tests patch seams that
#: way) disables the epoch engine for the run.
_SEAM_METHODS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("system", ("execute", "run", "crash", "result", "reset_stats")),
    ("hierarchy", ("load", "store", "persist", "drop_all", "_install",
                   "_spill")),
    ("l1", ("lookup", "peek", "insert", "invalidate")),
    ("l2", ("lookup", "peek", "insert", "invalidate")),
    ("l3", ("lookup", "peek", "insert", "invalidate")),
    ("controller", ("write_data", "read_data", "tick", "fetch_node",
                    "_fetch_chain", "_parent_counter_chain", "_install",
                    "_flush_node", "_on_leaf_persist", "_persist_node",
                    "_mark_dirty", "_mark_clean", "_bump_leaf",
                    "_bump_parent", "_update_parent_counter",
                    "drain_pending", "_payload_for", "_data_mac",
                    "_root_counter", "_apply_due", "_on_node_dirtied",
                    "_on_node_updated", "_on_node_cleaned")),
    ("nvm", ("read_line", "write_line", "read_latency", "peek_line",
             "_touch_row")),
    ("wpq", ("enqueue", "advance_to")),
    ("hash_engine", ("charge",)),
    ("mac", ("mac", "mac_uncached")),
    ("cme", ("encrypt", "decrypt", "_otp")),
    ("meta_cache", ("lookup", "peek", "insert")),
    ("store", ("load", "save", "coords_of")),
)


def ineligible_reason(system) -> str | None:
    """Why this run must take the scalar path, or ``None`` if the epoch
    engine can reproduce it byte-identically."""
    if not vector.HAVE_NUMPY:
        return "numpy is not available"
    from repro.sim.system import System
    if type(system) is not System:
        return f"subclassed system ({type(system).__name__})"
    ctl = system.controller
    flavor = _FLAVORS.get(type(ctl))
    if flavor is None:
        return (f"no transcribed tail for controller "
                f"{type(ctl).__name__}")
    # Observability: the interpreter emits no spans/instants, which is
    # only equivalent while every inlined component's recorder is off.
    for label, obj in (("system", system), ("controller", ctl),
                       ("nvm", ctl.nvm), ("wpq", ctl.wpq),
                       ("hash_engine", ctl.hash_engine)):
        if getattr(obj.obs, "enabled", True):
            return f"recorder attached to {label}"
    # Exact component types: a subclass may override anything we inline.
    for label, obj, cls in (
            ("hierarchy", system.hierarchy, CacheHierarchy),
            ("l1", system.hierarchy.l1, SetAssociativeCache),
            ("l2", system.hierarchy.l2, SetAssociativeCache),
            ("l3", system.hierarchy.l3, SetAssociativeCache),
            ("nvm", ctl.nvm, NVMDevice),
            ("wpq", ctl.wpq, WritePendingQueue),
            ("hash_engine", ctl.hash_engine, HashEngine),
            ("mac", ctl.mac, KeyedMac),
            ("cme", ctl.cme, CMEEngine),
            ("meta_cache", ctl.meta_cache, SetAssociativeCache),
            ("store", ctl.store, SITStore),
            ("amap", ctl.amap, AddressMap)):
        if type(obj) is not cls:
            return f"subclassed {label} ({type(obj).__name__})"
    # Modes the transcription does not model.
    cfg = system.config
    if not cfg.leaf_write_through:
        return "deferred-leaf mode (leaf_write_through off)"
    if cfg.check_data:
        return "check_data shadow verification"
    if ctl.nvm.wear is not None:
        return "wear tracking"
    if getattr(ctl, "tracker", None) is not None:
        return "recovery tracker attached"
    if getattr(cfg, "osiris_limit", 0):
        return "osiris persistence limit"
    if ctl.amap.tree_levels < 2:
        return "single-level tree"
    if ctl.meta_cache.line_size != CACHE_LINE_SIZE:
        return "non-standard metadata cache line size"
    if ctl.meta_cache.unbounded:
        return "unbounded metadata cache"
    for label, cpu_cache in (("l1", system.hierarchy.l1),
                             ("l2", system.hierarchy.l2),
                             ("l3", system.hierarchy.l3)):
        if cpu_cache.line_size != CACHE_LINE_SIZE:
            return f"non-standard {label} line size"
        if cpu_cache.unbounded:
            return f"unbounded {label} cache"
    if ctl.parallel_hashing is not True:
        return "serial hash engine discipline"
    # Patched seams (the sanitizer patches instance attributes).
    components = {"system": system, "hierarchy": system.hierarchy,
                  "l1": system.hierarchy.l1, "l2": system.hierarchy.l2,
                  "l3": system.hierarchy.l3,
                  "controller": ctl, "nvm": ctl.nvm, "wpq": ctl.wpq,
                  "hash_engine": ctl.hash_engine, "mac": ctl.mac,
                  "cme": ctl.cme, "meta_cache": ctl.meta_cache,
                  "store": ctl.store}
    for label, names in _SEAM_METHODS:
        inst = getattr(components[label], "__dict__", None)
        if inst:
            for name in names:
                if name in inst:
                    return f"{label}.{name} is patched"
    # The two always-instance-bound delegates must be the pristine ones.
    if getattr(system._line_of, "__func__", None) is not AddressMap.line_of:
        return "system._line_of is patched"
    if getattr(ctl.store.node_addr, "__func__", None) \
            is not AddressMap.tree_node_addr:
        return "store.node_addr is patched"
    return None


def run_trace(system, trace, plan: bool = True) -> bool:
    """Run ``trace`` through the epoch engine if eligible.

    Returns ``True`` when the engine ran (the trace is consumed), or
    ``False`` without touching the trace so the caller can fall back to
    the scalar loop.
    """
    if ineligible_reason(system) is not None:
        return False
    EpochEngine(system, plan=plan).run(trace)
    return True


class EpochEngine:
    """One run's worth of bound-state interpreter + planner.

    Construct per :meth:`System.run` call — eligibility (and the
    sanitizer's seam patches) are re-checked each run, and histogram /
    ledger objects are re-bound (``reset_stats`` replaces some of
    them).
    """

    def __init__(self, system, plan: bool = True) -> None:
        reason = ineligible_reason(system)
        if reason is not None:
            raise ConfigError(f"epoch engine ineligible: {reason}")
        self.system = system
        self.flavor = _FLAVORS[type(system.controller)]
        self.plan_enabled = plan
        #: Planner telemetry (engine-local on purpose: anything pushed
        #: into the StatGroups would change the digested stats dict).
        self.epochs = 0
        self.planned_rows = 0
        self.window_rows = 0

    # ------------------------------------------------------------------
    def run(self, trace) -> None:
        """Execute the whole trace in :data:`EPOCH_WINDOW`-row epochs."""
        np = vector.np
        system = self.system
        flavor = self.flavor
        is_scue = flavor == "scue"
        is_lazy = flavor == "lazy"
        is_eager = flavor == "eager"
        is_plp = flavor == "plp"
        is_bmf = flavor == "bmf"
        is_baseline = flavor == "baseline"

        # ---- bind the world once ------------------------------------
        ctl = system.controller
        name = ctl.name
        amap = ctl.amap
        cap = amap.data_capacity
        arity = amap.arity
        tree_levels = amap.tree_levels
        counter_bits = amap.counter_bits
        cmask = (1 << counter_bits) - 1
        tree_base = amap._tree_base
        tree_offsets = amap._tree_offsets
        branch_addrs = amap.branch_addrs
        cb_of_data = amap.counter_block_of_data  # negative-addr raise parity

        hierarchy = system.hierarchy
        l1, l2, l3 = hierarchy.l1, hierarchy.l2, hierarchy.l3
        l1_sets, l2_sets, l3_sets = l1._sets, l2._sets, l3._sets
        l1_nsets, l2_nsets, l3_nsets = l1.num_sets, l2.num_sets, l3.num_sets
        l1_ways, l2_ways, l3_ways = l1.ways, l2.ways, l3.ways
        l1_hits, l2_hits, l3_hits = l1._hits, l2._hits, l3._hits
        l1_misses, l2_misses, l3_misses = \
            l1._misses, l2._misses, l3._misses
        l1_evictions, l2_evictions, l3_evictions = \
            l1._evictions, l2._evictions, l3._evictions
        l1_wbs, l2_wbs, l3_wbs = \
            l1._writebacks, l2._writebacks, l3._writebacks

        nvm = ctl.nvm
        nvm_lines = nvm._lines
        open_rows = nvm._open_rows
        banks = nvm.timing.banks
        row_hit_read = nvm.timing.row_hit_read_cycles
        row_miss_read = nvm.timing.read_cycles
        write_service = ctl.timing.write_service_cycles
        nvm_reads = nvm._reads
        nvm_writes = nvm._writes
        row_hits = nvm._row_hits
        row_misses = nvm._row_misses

        mc = ctl.meta_cache
        mc_sets = mc._sets
        mc_nsets = mc.num_sets
        mc_ways = mc.ways
        mc_hits = mc._hits
        mc_misses = mc._misses
        mc_evictions = mc._evictions
        mc_writebacks = mc._writebacks
        victim_buffer = ctl._victim_buffer

        mac = ctl.mac
        mac_memo = mac.memo
        mac_uncached = mac.mac_uncached
        mac_limit = mac.MEMO_LIMIT

        cme = ctl.cme
        pads = cme._pads
        pad_limit = cme._PAD_MEMO_LIMIT
        cme_key = cme._key
        encrypts = cme._encrypts
        decrypts = cme._decrypts

        hash_engine = ctl.hash_engine
        hash_lat = hash_engine.latency_cycles
        hashes = hash_engine._hashes
        busy = hash_engine._busy_cycles

        wpq = ctl.wpq
        wpq_data = wpq._data
        wpq_meta = wpq._metadata
        drain_cycles = wpq.drain_cycles
        wdata_cap = wpq.data_capacity
        wmeta_cap = wpq.metadata_capacity
        wpq_drained = wpq._drained
        wpq_enq_ctr = wpq._enqueued
        wpq_menq_ctr = wpq._meta_enqueued
        wpq_stall_ctr = wpq._stall
        wpq_full_ctr = wpq._full_events

        write_data = ctl.write_data  # eviction writebacks stay real
        bump_leaf = ctl._bump_leaf   # overflow: rare, stateful, real
        data_macs = ctl.data_macs
        plaintexts = ctl._plaintexts
        data_reads = ctl._data_reads
        data_writes = ctl._data_writes
        meta_reads = ctl._meta_reads
        meta_writes = ctl._meta_writes
        load_stalls = system._load_stalls
        persist_stalls = system._persist_stalls
        instructions = system._instructions
        loads = system._loads
        stores = system._stores
        persists = system._persists
        # Rebound per run: reset_stats() replaces the ledger dict, and
        # histogram reset() replaces the bucket list.
        attr = system.attribution.cycles
        write_hist = ctl._write_latency
        read_hist = ctl._read_latency
        verify_hist = ctl._verify_latency

        READ = AccessType.READ
        WRITE = AccessType.WRITE
        nmask = (1 << counter_bits) - 1  # SITNode counter mask == cmask
        cb_from_bytes = CounterBlock.from_bytes
        sit_from_bytes = SITNode.from_bytes
        root_counters = ctl.running_root._counters

        if is_scue:
            recovery_counters = ctl.recovery_root._counters
            top_subtree = ctl._top_subtree_leaves
            shortcut_updates = ctl._shortcut_updates
        if is_bmf:
            nvmc = ctl._nvmc
            persistent_root = ctl._persistent_root
        if is_eager:
            apply_due = ctl._apply_due

        def hadd(hist, value):
            # LatencyHistogram.add(value) with weight 1, inlined fields.
            idx = value.bit_length() if value > 0 else 0
            if idx >= 64:
                idx = 63
            hist.counts[idx] += 1
            hist.count += 1
            hist.total += value
            if hist.minimum is None or value < hist.minimum:
                hist.minimum = value
            if hist.maximum is None or value > hist.maximum:
                hist.maximum = value

        # ---- the CPU cache hierarchy, inlined ------------------------
        EMPTY = ()

        def cpu_insert(sets, nsets, ways, evictions, writebacks, line,
                       dirty):
            """`SetAssociativeCache.insert` for the tag-only CPU caches
            (payload is always ``None``); returns the evicted victim."""
            cset = sets[(line >> 6) % nsets]
            existing = cset.get(line)
            if existing is not None:
                existing.dirty = existing.dirty or dirty
                cset.move_to_end(line)
                return None
            victim = None
            if len(cset) >= ways:
                _, victim = cset.popitem(last=False)
                evictions.value += 1
                if victim.dirty:
                    writebacks.value += 1
            cset[line] = CacheLine(line, dirty, None)
            return victim

        def cpu_install(line, dirty):
            """`CacheHierarchy._install`: inclusive outer-in fill with
            write-back spills; returns the dirty lines falling out of
            L3 (the hierarchy recorder is off by eligibility, so the
            LLC-writeback instant never fires)."""
            victim = cpu_insert(l3_sets, l3_nsets, l3_ways,
                                l3_evictions, l3_wbs, line, False)
            victim2 = cpu_insert(l2_sets, l2_nsets, l2_ways,
                                 l2_evictions, l2_wbs, line, False)
            victim1 = cpu_insert(l1_sets, l1_nsets, l1_ways,
                                 l1_evictions, l1_wbs, line, dirty)
            # _spill: a dirty inner victim marks its inclusive outer copy.
            if victim1 is not None and victim1.dirty:
                spilled = l2_sets[(victim1.addr >> 6) % l2_nsets] \
                    .get(victim1.addr)
                if spilled is not None:
                    spilled.dirty = True
            if victim2 is not None and victim2.dirty:
                spilled = l3_sets[(victim2.addr >> 6) % l3_nsets] \
                    .get(victim2.addr)
                if spilled is not None:
                    spilled.dirty = True
            if victim is None:
                return EMPTY
            va = victim.addr
            dirty_out = victim.dirty
            dropped = l1_sets[(va >> 6) % l1_nsets].pop(va, None)
            if dropped is not None and dropped.dirty:
                dirty_out = True
            dropped = l2_sets[(va >> 6) % l2_nsets].pop(va, None)
            if dropped is not None and dropped.dirty:
                dirty_out = True
            if dirty_out:
                return (va,)
            return EMPTY

        def cpu_load(line):
            """`CacheHierarchy.load`; returns (miss_to_memory,
            writebacks)."""
            cset = l1_sets[(line >> 6) % l1_nsets]
            if cset.get(line) is not None:
                cset.move_to_end(line)
                l1_hits.value += 1
                return False, EMPTY
            l1_misses.value += 1
            cset = l2_sets[(line >> 6) % l2_nsets]
            if cset.get(line) is not None:
                cset.move_to_end(line)
                l2_hits.value += 1
                victim = cpu_insert(l1_sets, l1_nsets, l1_ways,
                                    l1_evictions, l1_wbs, line, False)
                if victim is not None and victim.dirty:
                    spilled = l2_sets[(victim.addr >> 6) % l2_nsets] \
                        .get(victim.addr)
                    if spilled is not None:
                        spilled.dirty = True
                return False, EMPTY
            l2_misses.value += 1
            cset = l3_sets[(line >> 6) % l3_nsets]
            if cset.get(line) is not None:
                cset.move_to_end(line)
                l3_hits.value += 1
                victim = cpu_insert(l2_sets, l2_nsets, l2_ways,
                                    l2_evictions, l2_wbs, line, False)
                if victim is not None and victim.dirty:
                    spilled = l3_sets[(victim.addr >> 6) % l3_nsets] \
                        .get(victim.addr)
                    if spilled is not None:
                        spilled.dirty = True
                victim = cpu_insert(l1_sets, l1_nsets, l1_ways,
                                    l1_evictions, l1_wbs, line, False)
                if victim is not None and victim.dirty:
                    spilled = l2_sets[(victim.addr >> 6) % l2_nsets] \
                        .get(victim.addr)
                    if spilled is not None:
                        spilled.dirty = True
                return False, EMPTY
            l3_misses.value += 1
            return True, cpu_install(line, False)

        def cpu_store(line):
            """`CacheHierarchy.store`; the miss flag is unused on the
            store path, so only the writebacks come back."""
            cset = l1_sets[(line >> 6) % l1_nsets]
            cl = cset.get(line)
            if cl is not None:
                cset.move_to_end(line)
                l1_hits.value += 1
                cl.dirty = True
                return EMPTY
            l1_misses.value += 1
            cset = l2_sets[(line >> 6) % l2_nsets]
            if cset.get(line) is not None:
                cset.move_to_end(line)
                l2_hits.value += 1
            else:
                l2_misses.value += 1
                cset = l3_sets[(line >> 6) % l3_nsets]
                if cset.get(line) is not None:
                    cset.move_to_end(line)
                    l3_hits.value += 1
                else:
                    l3_misses.value += 1
            return cpu_install(line, True)

        def cpu_persist(line):
            """`CacheHierarchy.persist`: probe every level (all counted,
            no early break), clean each resident copy, write-allocate on
            a full miss."""
            hit = False
            cset = l1_sets[(line >> 6) % l1_nsets]
            cl = cset.get(line)
            if cl is not None:
                cset.move_to_end(line)
                l1_hits.value += 1
                cl.dirty = False
                hit = True
            else:
                l1_misses.value += 1
            cset = l2_sets[(line >> 6) % l2_nsets]
            cl = cset.get(line)
            if cl is not None:
                cset.move_to_end(line)
                l2_hits.value += 1
                cl.dirty = False
                hit = True
            else:
                l2_misses.value += 1
            cset = l3_sets[(line >> 6) % l3_nsets]
            cl = cset.get(line)
            if cl is not None:
                cset.move_to_end(line)
                l3_hits.value += 1
                cl.dirty = False
                hit = True
            else:
                l3_misses.value += 1
            if hit:
                return EMPTY
            return cpu_install(line, False)

        # ---- WPQ: advance_to / enqueue, inlined ----------------------
        def wpq_advance(cycle):
            if cycle < wpq._now:
                return
            wpq._now = cycle
            ndrain = wpq._next_drain_at
            while (wpq_data or wpq_meta) and ndrain <= cycle:
                if wpq_meta:
                    wpq_meta.popleft()
                else:
                    wpq_data.popleft()
                wpq_drained.value += 1
                ndrain += drain_cycles
            if ndrain < cycle and not wpq_data and not wpq_meta:
                ndrain = cycle  # idle queue: drain restarts on arrival
            wpq._next_drain_at = ndrain

        def wpq_enqueue(line_addr, cycle, metadata):
            wpq_advance(cycle)
            if metadata:
                queue = wpq_meta
                capacity = wmeta_cap
            else:
                queue = wpq_data
                capacity = wdata_cap
            stall = 0
            if len(queue) >= capacity:
                wpq_full_ctr.value += 1
                while len(queue) >= capacity:
                    now = wpq._now
                    wait_until = wpq._next_drain_at
                    if wait_until <= now:
                        wait_until = now + 1
                    stall += wait_until - now
                    wpq_advance(wait_until)
            if not wpq_data and not wpq_meta:
                wpq._next_drain_at = wpq._now + drain_cycles
            queue.append(WPQEntry(line_addr, wpq._now, metadata))
            if metadata:
                wpq_menq_ctr.value += 1
            else:
                wpq_enq_ctr.value += 1
            if stall:
                wpq_stall_ctr.value += stall
            return stall

        # ---- seals through the tagged-tuple MAC memo -----------------
        def seal_leaf(leaf, maddr, parent_counter):
            """`CounterBlock.seal` via the content-keyed MAC memo."""
            key = ("leaf", maddr, leaf.major, tuple(leaf.minors),
                   parent_counter)
            value = mac_memo.get(key)
            if value is None:
                value = mac_uncached(maddr, leaf._counter_image(),
                                     parent_counter)
                if len(mac_memo) >= mac_limit:
                    mac_memo.clear()
                mac_memo[key] = value
            leaf.hmac = value
            leaf.hmac_stale = False

        def seal_sit(node, node_addr, parent_counter):
            """`SITNode.seal` via the content-keyed MAC memo."""
            key = ("sit", node_addr, tuple(node.counters), parent_counter)
            value = mac_memo.get(key)
            if value is None:
                value = mac_uncached(node_addr, node._counter_image(),
                                     parent_counter)
                if len(mac_memo) >= mac_limit:
                    mac_memo.clear()
                mac_memo[key] = value
            node.hmac = value
            node.hmac_stale = False

        # ---- the metadata fetch-and-verify chain, inlined ------------
        def install(line, node, dirty):
            """`_install`: cache insert + synchronous dirty-victim flush.
            Dirty-notification hooks are no-ops for every eligible flavor
            (eligibility requires ``tracker is None``)."""
            mset = mc_sets[(line >> 6) % mc_nsets]
            existing = mset.get(line)
            if existing is not None:
                if node is not None:
                    existing.payload = node
                existing.dirty = existing.dirty or dirty
                mset.move_to_end(line)
                return
            victim = None
            if len(mset) >= mc_ways:
                _, victim = mset.popitem(last=False)
                mc_evictions.value += 1
                if victim.dirty:
                    mc_writebacks.value += 1
            mset[line] = CacheLine(line, dirty, node)
            if victim is not None and victim.dirty:
                ctl._flush_depth += 1
                if ctl._flush_depth > 64:
                    raise SimulationError(
                        "runaway eviction cascade in the metadata cache")
                victim_buffer[victim.addr] = victim.payload
                try:
                    ctl._flush_charge += flush_victim(victim.payload,
                                                      ctl._op_cycle)
                finally:
                    ctl._flush_depth -= 1
                    victim_buffer.pop(victim.addr, None)

        def chain_miss(level, index, line, mset):
            """`_fetch_chain` past the (already missed) counted probe.
            Returns ``(node, read_latency, nodes_fetched)``."""
            if is_baseline:
                # Baseline override: read the block directly, unverified
                # (no victim-buffer snoop, no parent chain, no hashes).
                row = line >> 12
                bank = row % banks
                hit = open_rows.get(bank) == row
                latency = row_hit_read if hit else row_miss_read
                nvm_reads.value += 1
                if hit:
                    row_hits.value += 1
                else:
                    row_misses.value += 1
                open_rows[bank] = row
                raw = nvm_lines.get(line, ZERO_LINE)
                if level == 0:
                    node = cb_from_bytes(index, raw)
                else:
                    node = sit_from_bytes(level, index, raw, arity)
                meta_reads.value += 1
                install(line, node, False)
                return node, latency, 0
            buffered = victim_buffer.get(line)
            if buffered is not None:
                return buffered, 0, 0
            # _parent_counter_chain: trusted counter for verification.
            if level + 1 >= tree_levels:
                slot = index % arity
                parent_counter = root_counters[slot]
                if is_eager:
                    for entry in ctl._pending_root:
                        if entry[1] == slot:
                            parent_counter += entry[2]
                    parent_counter &= cmask
                latency = 0
                fetched = 0
            elif is_bmf:
                # BMF `_fetch_chain` override: the leaf parent lives in
                # the persistent on-chip root table, free of charge.
                root = nvmc.get(index // arity)
                if root is None:
                    root = persistent_root(index // arity)
                parent_counter = root.counters[index % arity]
                latency = 0
                fetched = 0
            else:
                parent, latency, fetched = fetch_chain(level + 1,
                                                       index // arity)
                parent_counter = parent.counters[index % arity]
            # The ancestor fetch can trigger eviction flushes that
            # touched this very line — re-check before loading a stale
            # media image over fresh on-chip state (uncounted peeks).
            cl = mset.get(line)
            if cl is not None:
                return cl.payload, latency, fetched
            buffered = victim_buffer.get(line)
            if buffered is not None:
                return buffered, latency, fetched
            row = line >> 12
            bank = row % banks
            hit = open_rows.get(bank) == row
            read_latency = row_hit_read if hit else row_miss_read
            if read_latency > latency:
                latency = read_latency
            # store.load -> nvm.read_line (counted) -> from_bytes.
            nvm_reads.value += 1
            if hit:
                row_hits.value += 1
            else:
                row_misses.value += 1
            open_rows[bank] = row
            raw = nvm_lines.get(line, ZERO_LINE)
            if level == 0:
                node = cb_from_bytes(index, raw)
            else:
                node = sit_from_bytes(level, index, raw, arity)
            meta_reads.value += 1
            # node.verify via the memo (blank nodes trust a zero parent).
            if level == 0:
                if node.hmac == 0 and node.major == 0 \
                        and not any(node.minors):
                    ok = parent_counter == 0
                else:
                    key = ("leaf", line, node.major, tuple(node.minors),
                           parent_counter)
                    value = mac_memo.get(key)
                    if value is None:
                        value = mac_uncached(line, node._counter_image(),
                                             parent_counter)
                        if len(mac_memo) >= mac_limit:
                            mac_memo.clear()
                        mac_memo[key] = value
                    ok = node.hmac == value
            else:
                if node.hmac == 0 and not any(node.counters):
                    ok = parent_counter == 0
                else:
                    key = ("sit", line, tuple(node.counters),
                           parent_counter)
                    value = mac_memo.get(key)
                    if value is None:
                        value = mac_uncached(line, node._counter_image(),
                                             parent_counter)
                        if len(mac_memo) >= mac_limit:
                            mac_memo.clear()
                        mac_memo[key] = value
                    ok = node.hmac == value
            if not ok:
                raise IntegrityError(
                    f"{name}: verification failed for tree node "
                    f"(level {level}, index {index}) at {line:#x}")
            install(line, node, False)
            return node, latency, fetched + 1

        def fetch_chain(level, index):
            """`_fetch_chain` including the counted head probe."""
            if level == 0:
                line = cap + (index << 6)
            else:
                line = tree_base + ((tree_offsets[level] + index) << 6)
            mset = mc_sets[(line >> 6) % mc_nsets]
            cl = mset.get(line)
            if cl is not None:
                mset.move_to_end(line)
                mc_hits.value += 1
                return cl.payload, 0, 0
            mc_misses.value += 1
            return chain_miss(level, index, line, mset)

        def fetch_charged(level, index, line, mset):
            """`fetch_node(..., charge=True)` after a missed probe:
            read latency + one parallel hash burst for the chain."""
            mc_misses.value += 1
            node, latency, fetched = chain_miss(level, index, line, mset)
            if fetched:
                hashes.value += fetched
                busy.value += hash_lat
                return node, latency + hash_lat
            return node, latency

        def fetch_uncharged(level, index, line, mset):
            """`fetch_node(..., charge=False)` after a missed probe:
            hashes/reads counted, zero critical-path latency (SCUE's
            background parent updates)."""
            mc_misses.value += 1
            node, _, fetched = chain_miss(level, index, line, mset)
            if fetched:
                hashes.value += fetched
                busy.value += hash_lat
            return node

        def fetch_leaf(leaf_index, maddr, speculative):
            """`fetch_node(0, leaf_index)` with the metadata-cache hit
            path inlined; ``speculative`` charges the read but not the
            verification hashes (read-path speculation)."""
            mset = mc_sets[(maddr >> 6) % mc_nsets]
            cl = mset.get(maddr)
            if cl is not None:
                mset.move_to_end(maddr)
                mc_hits.value += 1
                return cl.payload, 0, cl
            mc_misses.value += 1
            node, latency, fetched = chain_miss(0, leaf_index, maddr, mset)
            if fetched:
                hashes.value += fetched
                busy.value += hash_lat
                if not speculative:
                    latency += hash_lat
            return node, latency, mset.get(maddr)

        def mark_dirty(node, cl):
            """`_mark_dirty` for a node whose cache line was just probed;
            hooks are no-ops for every eligible flavor."""
            if cl is None:
                ctl._mark_dirty(node)  # rare: not resident (tiny caches)
            elif not cl.dirty:
                cl.dirty = True

        def persist_node(node, node_addr, cycle):
            """`_persist_node`: WPQ enqueue + `store.save` +
            `_mark_clean`, inlined.  Returns (wpq_stall, raw_bytes)."""
            stall = wpq_enqueue(node_addr, cycle, True)
            raw = node.to_bytes()
            nvm_writes.value += 1
            row = node_addr >> 12
            bank = row % banks
            if open_rows.get(bank) == row:
                row_hits.value += 1
            else:
                row_misses.value += 1
            open_rows[bank] = row
            nvm_lines[node_addr] = raw
            meta_writes.value += 1
            cl = mc_sets[(node_addr >> 6) % mc_nsets].get(node_addr)
            if cl is not None and cl.dirty:
                cl.dirty = False
            return stall, raw

        # ---- dirty-victim flushes: `_flush_node`, per flavor ---------
        def flush_scue(node, cycle):
            """SCUE flush (Fig 7): seal with the node's own dummy counter
            (no reads), persist, counter-summing parent update off the
            critical path."""
            if node.__class__ is CounterBlock:
                level = 0
                index = node.index
                addr = cap + (index << 6)
                dummy = (node.major * 64 + sum(node.minors)) & cmask
                seal_leaf(node, addr, dummy)
            else:
                level = node.level
                index = node.index
                addr = tree_base + ((tree_offsets[level] + index) << 6)
                dummy = sum(node.counters) & cmask
                seal_sit(node, addr, dummy)
            hashes.value += 1
            busy.value += hash_lat
            stall, _ = persist_node(node, addr, cycle)
            # _update_parent_counter(set_to=dummy, charge=False).
            slot = index % arity
            if level + 1 >= tree_levels:
                root_counters[slot] = dummy & cmask  # running_root.set
                return stall
            plevel = level + 1
            pindex = index // arity
            paddr = tree_base + ((tree_offsets[plevel] + pindex) << 6)
            pset = mc_sets[(paddr >> 6) % mc_nsets]
            pcl = pset.get(paddr)
            if pcl is not None:
                pset.move_to_end(paddr)
                mc_hits.value += 1
                parent = pcl.payload
            else:
                parent = fetch_uncharged(plevel, pindex, paddr, pset)
                pcl = pset.get(paddr)
            if parent.__class__ is not SITNode:
                expect_node(parent, SITNode, name + ": parent update")
            parent.counters[slot] = dummy & nmask
            parent.hmac_stale = True
            mark_dirty(parent, pcl)
            return stall

        def flush_lazy(node, cycle):
            """Lazy flush: fetch + bump the parent *now* (the reads SCUE's
            dummy counter eliminates), seal, persist."""
            if node.__class__ is CounterBlock:
                level = 0
                index = node.index
                addr = cap + (index << 6)
            else:
                level = node.level
                index = node.index
                addr = tree_base + ((tree_offsets[level] + index) << 6)
            # _bump_parent(level, index, 1, cycle, charge=True).
            slot = index % arity
            if level + 1 >= tree_levels:
                parent_counter = (root_counters[slot] + 1) & cmask
                root_counters[slot] = parent_counter
                fetch_latency = REGISTER_UPDATE_CYCLES
            else:
                plevel = level + 1
                pindex = index // arity
                paddr = tree_base + ((tree_offsets[plevel] + pindex) << 6)
                pset = mc_sets[(paddr >> 6) % mc_nsets]
                pcl = pset.get(paddr)
                if pcl is not None:
                    pset.move_to_end(paddr)
                    mc_hits.value += 1
                    parent = pcl.payload
                    fetch_latency = 0
                else:
                    parent, fetch_latency = fetch_charged(plevel, pindex,
                                                          paddr, pset)
                    pcl = pset.get(paddr)
                if parent.__class__ is not SITNode:
                    expect_node(parent, SITNode, name + ": parent bump")
                counters = parent.counters
                parent_counter = (counters[slot] + 1) & nmask
                counters[slot] = parent_counter
                parent.hmac_stale = True
                mark_dirty(parent, pcl)
            if level == 0:
                seal_leaf(node, addr, parent_counter)
            else:
                seal_sit(node, addr, parent_counter)
            hashes.value += 2
            busy.value += hash_lat * 2  # charge(2, parallel=False)
            stall, _ = persist_node(node, addr, cycle)
            return fetch_latency + stall

        def flush_simple(node, cycle):
            """Eager/PLP/baseline flush: the HMAC is already current —
            just persist."""
            if node.__class__ is CounterBlock:
                addr = cap + (node.index << 6)
            else:
                addr = tree_base \
                    + ((tree_offsets[node.level] + node.index) << 6)
            stall, _ = persist_node(node, addr, cycle)
            return stall

        def flush_bmf(node, cycle):
            """BMF-ideal flush: bump the persistent root, seal, persist."""
            if node.__class__ is not CounterBlock:
                raise SimulationError(
                    "BMF-ideal never caches nodes above the leaf level")
            index = node.index
            root = nvmc.get(index // arity)
            if root is None:
                root = persistent_root(index // arity)
            slot = index % arity
            counters = root.counters
            counters[slot] = (counters[slot] + 1) & nmask
            root.hmac_stale = True
            addr = cap + (index << 6)
            seal_leaf(node, addr, counters[slot])
            hashes.value += 1
            busy.value += hash_lat
            stall, _ = persist_node(node, addr, cycle)
            return stall

        flush_victim = {"scue": flush_scue, "lazy": flush_lazy,
                        "eager": flush_simple, "plp": flush_simple,
                        "baseline": flush_simple, "bmf": flush_bmf}[flavor]

        def climb_branch(leaf, leaf_index, delta, context):
            """The eager/PLP branch walk: bump + dirty every ancestor,
            seal each node with its parent's fresh counter.  Returns
            (fetch_latency, top_index, branch_nodes, branch_media)."""
            baddrs = branch_addrs(leaf_index)
            fetch_latency = 0
            current = leaf
            level, index = 0, leaf_index
            depth = 0
            nodes = [leaf]
            while level + 1 < tree_levels:
                plevel = level + 1
                pindex = index // arity
                paddr = baddrs[depth + 1]
                pset = mc_sets[(paddr >> 6) % mc_nsets]
                pcl = pset.get(paddr)
                if pcl is not None:
                    pset.move_to_end(paddr)
                    mc_hits.value += 1
                    parent = pcl.payload
                else:
                    parent, latency = fetch_charged(plevel, pindex,
                                                    paddr, pset)
                    fetch_latency += latency
                    pcl = pset.get(paddr)
                if parent.__class__ is not SITNode:
                    expect_node(parent, SITNode, context)
                slot = index % arity
                counters = parent.counters
                counters[slot] = (counters[slot] + delta) & nmask
                parent.hmac_stale = True
                mark_dirty(parent, pcl)
                if depth:
                    seal_sit(current, baddrs[depth], counters[slot])
                else:
                    seal_leaf(current, baddrs[0], counters[slot])
                nodes.append(parent)
                current = parent
                level, index = plevel, pindex
                depth += 1
            return fetch_latency, index, nodes, baddrs

        # ---- scheme tails: `_on_leaf_persist`, transcribed -----------
        def tail_baseline(leaf, leaf_index, delta, cycle, maddr):
            stall, _ = persist_node(leaf, maddr, cycle)
            return stall

        def tail_bmf(leaf, leaf_index, delta, cycle, maddr):
            root = nvmc.get(leaf_index // arity)
            if root is None:
                root = persistent_root(leaf_index // arity)
            slot = leaf_index % arity
            counters = root.counters
            counters[slot] = (counters[slot] + delta) & nmask
            root.hmac_stale = True
            seal_leaf(leaf, maddr, counters[slot])
            hashes.value += 1
            busy.value += hash_lat
            stall, _ = persist_node(leaf, maddr, cycle)
            return hash_lat + stall

        def tail_lazy(leaf, leaf_index, delta, cycle, maddr):
            # _bump_parent(0, leaf_index, 1, charge=True): tree_levels
            # >= 2 is an eligibility invariant, so the parent is a node.
            pindex = leaf_index // arity
            paddr = branch_addrs(leaf_index)[1]
            pset = mc_sets[(paddr >> 6) % mc_nsets]
            pcl = pset.get(paddr)
            if pcl is not None:
                pset.move_to_end(paddr)
                mc_hits.value += 1
                parent = pcl.payload
                fetch_latency = 0
            else:
                parent, fetch_latency = fetch_charged(1, pindex, paddr,
                                                      pset)
                pcl = pset.get(paddr)
            if parent.__class__ is not SITNode:
                expect_node(parent, SITNode, "lazy: parent bump")
            slot = leaf_index % arity
            counters = parent.counters
            counters[slot] = (counters[slot] + 1) & nmask
            parent.hmac_stale = True
            mark_dirty(parent, pcl)
            seal_leaf(leaf, maddr, counters[slot])
            hashes.value += 2
            hash_latency = hash_lat * 2  # charge(2, parallel=False)
            busy.value += hash_latency
            stall, _ = persist_node(leaf, maddr, cycle)
            return fetch_latency + hash_latency + stall

        def tail_scue(leaf, leaf_index, delta, cycle, maddr):
            dummy = (leaf.major * 64 + sum(leaf.minors)) & cmask
            seal_leaf(leaf, maddr, dummy)
            hashes.value += 1
            busy.value += hash_lat
            slot = (leaf_index // top_subtree) % arity
            recovery_counters[slot] = \
                (recovery_counters[slot] + delta) & cmask
            shortcut_updates.value += 1
            stall, _ = persist_node(leaf, maddr, cycle)
            # Parent update off the critical path (charge=False).
            pindex = leaf_index // arity
            paddr = branch_addrs(leaf_index)[1]
            pset = mc_sets[(paddr >> 6) % mc_nsets]
            pcl = pset.get(paddr)
            if pcl is not None:
                pset.move_to_end(paddr)
                mc_hits.value += 1
                parent = pcl.payload
            else:
                parent = fetch_uncharged(1, pindex, paddr, pset)
                pcl = pset.get(paddr)
            if parent.__class__ is not SITNode:
                expect_node(parent, SITNode, "scue: parent update")
            pslot = leaf_index % arity
            parent.counters[pslot] = dummy & nmask
            parent.hmac_stale = True
            mark_dirty(parent, pcl)
            return hash_lat + REGISTER_UPDATE_CYCLES + stall

        def tail_eager(leaf, leaf_index, delta, cycle, maddr):
            fetch_latency, top_index, nodes, baddrs = climb_branch(
                leaf, leaf_index, delta, "eager: branch propagation")
            slot = top_index % arity
            hashes.value += tree_levels
            busy.value += hash_lat  # charge(tree_levels, parallel=True)
            stall, _ = persist_node(leaf, maddr, cycle)
            ctl._window_extra = fetch_latency + hash_lat
            pending = ctl._pending_root
            pending.append([None, slot, delta])
            # Top seal uses the *effective* root: register + pending.
            effective = root_counters[slot]
            for entry in pending:
                if entry[1] == slot:
                    effective += entry[2]
            seal_sit(nodes[-1], baddrs[tree_levels - 1], effective & cmask)
            return fetch_latency + hash_lat + stall

        def tail_plp(leaf, leaf_index, delta, cycle, maddr):
            fetch_latency, top_index, nodes, baddrs = climb_branch(
                leaf, leaf_index, delta, "plp: branch persist")
            slot = top_index % arity
            root_counters[slot] = (root_counters[slot] + delta) & cmask
            seal_sit(nodes[-1], baddrs[tree_levels - 1],
                     root_counters[slot])
            hashes.value += tree_levels
            busy.value += hash_lat  # charge(len(branch), parallel=True)
            wpq_stall = 0
            for depth, node in enumerate(nodes):
                node_addr = baddrs[depth]
                stall, raw = persist_node(node, node_addr, cycle)
                wpq_stall += stall
                if depth:
                    # Shadow write: same node, same media line, again.
                    wpq_stall += wpq_enqueue(node_addr, cycle, True)
                    nvm_writes.value += 1
                    row = node_addr >> 12
                    bank = row % banks
                    if open_rows.get(bank) == row:
                        row_hits.value += 1
                    else:
                        row_misses.value += 1
                    open_rows[bank] = row
                    nvm_lines[node_addr] = raw
                    meta_writes.value += 1
                    shadow_writes.value += 1
            return fetch_latency + hash_lat + wpq_stall

        if is_plp:
            shadow_writes = ctl._shadow_writes

        tail = {"baseline": tail_baseline, "bmf": tail_bmf,
                "lazy": tail_lazy, "scue": tail_scue,
                "eager": tail_eager, "plp": tail_plp}[flavor]

        # ---- the interpreter: System.execute + read/write_data -------
        def execute(access):
            retired = access.gap + 1
            cycle = system.cycle + retired
            system.cycle = cycle
            attr["cpu"] += retired
            instructions.value += retired
            addr = access.addr
            line = addr & -64
            if line >= cap:
                raise AddressError(
                    f"trace address {addr:#x} beyond the data region")
            kind = access.kind
            if kind is READ:
                loads.value += 1
                miss, writebacks = cpu_load(line)
                if miss:
                    if line < 0:
                        cb_of_data(line)  # raises like the scalar path
                    if is_eager and ctl._pending_root:
                        apply_due(cycle)
                    ctl._op_cycle = cycle
                    leaf_index = line >> 12
                    maddr = cap + (leaf_index << 6)
                    leaf, fetch_latency, _ = fetch_leaf(
                        leaf_index, maddr, True)
                    if leaf.__class__ is not CounterBlock:
                        expect_node(leaf, CounterBlock, name + ": data read")
                    row = line >> 12
                    bank = row % banks
                    hit = open_rows.get(bank) == row
                    array_latency = row_hit_read if hit else row_miss_read
                    nvm_reads.value += 1
                    if hit:
                        row_hits.value += 1
                    else:
                        row_misses.value += 1
                    open_rows[bank] = row
                    ciphertext = nvm_lines.get(line, ZERO_LINE)
                    data_reads.value += 1
                    stored_mac = data_macs.get(line)
                    if stored_mac is not None:
                        # cme.decrypt: the plaintext is discarded by the
                        # caller, so only the counted side effects run.
                        decrypts.value += 1
                        hashes.value += 1
                        busy.value += hash_lat
                        minor = leaf.minors[(line >> 6) & 63]
                        mkey = (line, ciphertext, leaf.major, minor)
                        computed = mac_memo.get(mkey)
                        if computed is None:
                            computed = mac_uncached(line, ciphertext,
                                                    leaf.major, minor)
                            if len(mac_memo) >= mac_limit:
                                mac_memo.clear()
                            mac_memo[mkey] = computed
                        if stored_mac != computed:
                            raise IntegrityError(
                                f"{name}: data MAC mismatch at {line:#x} "
                                f"— tampered user data detected")
                    flush_cycles = ctl._flush_charge
                    if flush_cycles:
                        ctl._flush_charge = 0
                    latency = (fetch_latency
                               if fetch_latency >= array_latency
                               else array_latency) + flush_cycles
                    hadd(read_hist, latency)
                    hadd(verify_hist, fetch_latency)
                    cycle += latency
                    system.cycle = cycle
                    load_stalls.value += latency
                    attr["read_flush"] += flush_cycles
                    overlapped = latency - flush_cycles
                    if fetch_latency > array_latency:
                        attr["read_verify"] += overlapped
                    else:
                        attr["read_media"] += overlapped
            elif kind is WRITE:
                stores.value += 1
                writebacks = cpu_store(line)
                data = access.data
                if data is not None:
                    if len(data) != 64:
                        data = (data + ZERO_LINE)[:64]
                    plaintexts[line] = bytes(data)
            else:  # PERSIST
                persists.value += 1
                writebacks = cpu_persist(line)
                if line < 0:
                    cb_of_data(line)  # raises like the scalar path
                if is_eager and ctl._pending_root:
                    apply_due(cycle)
                ctl._op_cycle = cycle
                data = access.data
                if data is not None:
                    if len(data) != 64:
                        data = (data + ZERO_LINE)[:64]
                    payload = bytes(data)
                else:
                    payload = plaintexts.get(line)
                    if payload is None:
                        payload = blake2b(line.to_bytes(8, "little"),
                                          digest_size=32).digest() * 2
                leaf_index = line >> 12
                maddr = cap + (leaf_index << 6)
                leaf, fetch_latency, cl = fetch_leaf(leaf_index, maddr,
                                                     False)
                if leaf.__class__ is not CounterBlock:
                    expect_node(leaf, CounterBlock, name + ": data write")
                slot = (line >> 6) & 63
                minors = leaf.minors
                minor = minors[slot] + 1
                if minor < MINOR_LIMIT:
                    leaf.hmac_stale = True
                    minors[slot] = minor
                    mark_dirty(leaf, cl)
                    delta = 1
                    overflow_cycles = 0
                    major = leaf.major
                else:
                    # Overflow: rare, stateful, kept real.  The bump
                    # replaces the minors list, so re-read from the leaf.
                    delta, overflow_cycles = bump_leaf(leaf, line, cycle)
                    major = leaf.major
                    minor = leaf.minors[slot]
                # cme.encrypt
                encrypts.value += 1
                okey = (line, major, minor)
                pad = pads.get(okey)
                if pad is None:
                    pad = make_otp(cme_key, line, major, minor)
                    if len(pads) >= pad_limit:
                        pads.clear()
                    pads[okey] = pad
                ciphertext = (int.from_bytes(payload, "little")
                              ^ int.from_bytes(pad, "little")) \
                    .to_bytes(64, "little")
                # data MAC (mac.mac memo path)
                mkey = (line, ciphertext, major, minor)
                mval = mac_memo.get(mkey)
                if mval is None:
                    mval = mac_uncached(line, ciphertext, major, minor)
                    if len(mac_memo) >= mac_limit:
                        mac_memo.clear()
                    mac_memo[mkey] = mval
                data_macs[line] = mval
                plaintexts[line] = payload
                scheme_cycles = tail(leaf, leaf_index, delta, cycle, maddr)
                wpq_stall = wpq_enqueue(line, cycle, False)
                nvm_writes.value += 1
                row = line >> 12
                bank = row % banks
                if open_rows.get(bank) == row:
                    row_hits.value += 1
                else:
                    row_misses.value += 1
                open_rows[bank] = row
                nvm_lines[line] = ciphertext
                data_writes.value += 1
                flush_cycles = ctl._flush_charge
                if flush_cycles:
                    ctl._flush_charge = 0
                critical = (fetch_latency + overflow_cycles
                            + scheme_cycles + flush_cycles)
                latency = critical + wpq_stall + write_service
                hadd(write_hist, latency)
                hadd(verify_hist, fetch_latency)
                cpu_stall = critical + wpq_stall
                if is_eager:
                    extra = ctl._window_extra
                    for entry in ctl._pending_root:
                        if entry[0] is None:
                            entry[0] = cycle + cpu_stall + extra
                cycle += cpu_stall
                system.cycle = cycle
                persist_stalls.value += cpu_stall
                attr["write_fetch"] += fetch_latency
                attr["write_overflow"] += overflow_cycles
                attr["write_scheme"] += scheme_cycles
                attr["write_flush"] += flush_cycles
                attr["write_wpq"] += wpq_stall
            for writeback in writebacks:
                if writeback < cap:
                    write_data(writeback, None, cycle, persist=False)
            # ctl.tick: eager lands due root updates, then the WPQ drains.
            if is_eager and ctl._pending_root:
                apply_due(cycle)
            wpq_advance(cycle)

        # ---- the planner: vectorized SCUE leaf-seal pre-seeding ------
        PERSIST = AccessType.PERSIST
        mac_key = mac._key
        image_memo = _counters._IMAGE_MEMO
        image_limit = _counters._IMAGE_MEMO_LIMIT

        def plan(window):
            """Predict the window's SCUE leaf seals and seed the
            content-keyed memos in bulk.  Pure cache warming: every
            seeded value is a function of its key, so mispredictions
            (eviction writebacks, overflows) simply miss and recompute.

            SCUE-only by design: the leaf-seal pipeline (counter image
            pack + seal MAC input) is the one place the scalar cost is
            Python packing rather than the hash itself — the image memo
            is always cold there because every persist creates a new
            counter state.  OTP/data-MAC seeding was measured to move
            `blake2b` work without removing any and is deliberately
            absent."""
            rows = []
            append = rows.append
            states = {}   # leaf_index -> [major, minors_copy, minor_sum]
            poisoned = set()
            for access in window:
                if access.kind is not PERSIST:
                    continue
                line = access.addr & -64
                if line < 0 or line >= cap:
                    continue
                leaf_index = line >> 12
                if leaf_index in poisoned:
                    continue
                state = states.get(leaf_index)
                if state is None:
                    maddr = cap + (leaf_index << 6)
                    cached = mc_sets[(maddr >> 6) % mc_nsets].get(maddr)
                    if cached is not None and \
                            cached.payload.__class__ is CounterBlock:
                        blk = cached.payload
                    else:
                        raw = nvm_lines.get(maddr)
                        if raw is None:
                            blk = None
                        else:
                            blk = cb_from_bytes(leaf_index, raw)
                    if blk is None:
                        state = [0, [0] * 64, 0]
                    else:
                        minors = list(blk.minors)
                        state = [blk.major, minors, sum(minors)]
                    states[leaf_index] = state
                slot = (line >> 6) & 63
                minors = state[1]
                minor = minors[slot] + 1
                if minor >= MINOR_LIMIT:
                    # Overflow re-encrypts the whole block; later rows
                    # of this leaf are unpredictable.
                    poisoned.add(leaf_index)
                    continue
                minors[slot] = minor
                state[2] += 1
                append((leaf_index, state[0], tuple(minors),
                        (state[0] * 64 + state[2]) & cmask))
            k = len(rows)
            if k < PLAN_MIN_ROWS:
                return
            self.planned_rows += k
            majors_arr = np.fromiter((r[1] for r in rows),
                                     dtype=np.uint64, count=k)
            minors_mat = np.array([r[2] for r in rows], dtype=np.uint64)
            dummies_arr = np.fromiter((r[3] for r in rows),
                                      dtype=np.uint64, count=k)
            maddrs_arr = np.fromiter((cap + (r[0] << 6) for r in rows),
                                     dtype=np.uint64, count=k)
            images = vector.pack_counter_images(majors_arr, minors_mat)
            seal_vals = vector.batch_keyed_hash8(
                mac_key,
                vector.seal_messages(maddrs_arr, images, dummies_arr))
            image_bytes = images.tobytes()
            for i in range(k):
                row = rows[i]
                skey = ("leaf", cap + (row[0] << 6), row[1], row[2],
                        row[3])
                if skey not in mac_memo:
                    if len(mac_memo) >= mac_limit:
                        mac_memo.clear()
                    mac_memo[skey] = seal_vals[i]
                ikey = (row[1], row[2])
                if ikey not in image_memo:
                    if len(image_memo) >= image_limit:
                        image_memo.clear()
                    image_memo[ikey] = image_bytes[i * 56:(i + 1) * 56]

        # ---- epoch loop ----------------------------------------------
        plan_scue = self.plan_enabled and is_scue
        it = iter(trace)
        while True:
            window = list(islice(it, EPOCH_WINDOW))
            if not window:
                break
            self.epochs += 1
            self.window_rows += len(window)
            if plan_scue:
                plan(window)
            for access in window:
                execute(access)
