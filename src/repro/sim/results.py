"""Run results: the measurements every benchmark reports.

A :class:`RunResult` is a frozen snapshot of one simulation run.  The
quantities mirror the paper's evaluation section: execution time (Fig 10/
12), average write latency (Fig 9/11), and memory-access breakdowns
(§V-E).  ``normalized_to`` produces the paper's Baseline-relative ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any


@dataclass(frozen=True)
class RunResult:
    """Measurements from one workload x scheme simulation."""

    workload: str
    scheme: str
    cycles: int
    instructions: int
    loads: int
    stores: int
    persists: int
    load_stall_cycles: int
    persist_stall_cycles: int
    avg_write_latency: float
    avg_read_latency: float
    nvm_data_reads: int
    nvm_data_writes: int
    nvm_meta_reads: int
    nvm_meta_writes: int
    hashes: int
    stats: dict[str, float] = field(default_factory=dict, repr=False)
    #: Per-component cycle attribution (repro.obs): sums to ``cycles``.
    attribution: dict[str, int] = field(default_factory=dict, repr=False)
    #: Latency histogram snapshots (``LatencyHistogram.to_dict`` form),
    #: keyed by flattened stat path (e.g. ``controller.write_latency``).
    histograms: dict[str, Any] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Deterministic serialization: the campaign result cache stores runs
    # as JSON and workers ship them between processes; declaration-order
    # fields keep equal results byte-equal once canonically encoded.
    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunResult":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunResult fields: {sorted(unknown)}")
        return cls(**data)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def memory_accesses(self) -> int:
        return (self.nvm_data_reads + self.nvm_data_writes
                + self.nvm_meta_reads + self.nvm_meta_writes)

    @property
    def metadata_accesses(self) -> int:
        return self.nvm_meta_reads + self.nvm_meta_writes

    def write_latency_vs(self, baseline: "RunResult") -> float:
        """Fig 9-style ratio: this scheme's mean write latency over the
        baseline's, same workload."""
        if baseline.avg_write_latency == 0:
            return 0.0
        return self.avg_write_latency / baseline.avg_write_latency

    def execution_time_vs(self, baseline: "RunResult") -> float:
        """Fig 10-style ratio: cycles over the baseline's cycles."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles
