"""Multi-programmed simulation (Table II: 8 cores, private L1/L2, shared
memory controller).

The single-core :class:`~repro.sim.system.System` measures per-scheme
costs in isolation; the paper's testbed runs one application per core with
all cores sharing the secure memory controller — its metadata cache, WPQ
and NVM bandwidth.  :class:`MultiProgramSystem` reproduces that sharing:

* each core owns a private cache hierarchy and executes its own trace;
* accesses from all cores are merged in global cycle order (an
  event-driven interleave: always advance the core that is earliest in
  simulated time);
* the shared controller serialises metadata state, so cores contend for
  metadata cache capacity and WPQ slots exactly as the paper's co-running
  applications do.

The shared L3 of Table II is approximated by each core's private
hierarchy carrying an L3 slice (capacity / cores), the standard
equal-partition approximation for homogeneous co-runs.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import AddressError, ConfigError
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.mem.trace import AccessType, MemoryAccess
from repro.secure import make_controller
from repro.sim.config import SystemConfig
from repro.util.stats import StatGroup


@dataclass
class CoreResult:
    """Per-core measurements from a multi-programmed run."""

    core: int
    workload: str
    cycles: int
    instructions: int
    accesses: int
    load_stall_cycles: int
    persist_stall_cycles: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class _Core:
    """One in-order core: private caches + its position in its trace."""

    def __init__(self, core_id: int, workload: str,
                 trace: Iterator[MemoryAccess],
                 hierarchy: CacheHierarchy) -> None:
        self.core_id = core_id
        self.workload = workload
        self.trace = trace
        self.hierarchy = hierarchy
        self.cycle = 0
        self.instructions = 0
        self.accesses = 0
        self.load_stalls = 0
        self.persist_stalls = 0
        self.done = False

    def result(self) -> CoreResult:
        return CoreResult(self.core_id, self.workload, self.cycle,
                          self.instructions, self.accesses,
                          self.load_stalls, self.persist_stalls)


class MultiProgramSystem:
    """N cores, one secure memory controller."""

    def __init__(self, config: SystemConfig, cores: int = 8) -> None:
        if cores <= 0:
            raise ConfigError("need at least one core")
        self.config = config
        self.num_cores = cores
        self.controller = make_controller(config)
        self.stats = StatGroup("multicore")
        base = config.hierarchy
        # Private hierarchies with an equal L3 slice per core.
        set_bytes = base.l3_ways * 64
        l3_slice = max((base.l3_size // cores) // set_bytes * set_bytes,
                       set_bytes)
        slice_cfg = HierarchyConfig(
            l1_size=base.l1_size, l1_ways=base.l1_ways,
            l2_size=base.l2_size, l2_ways=base.l2_ways,
            l3_size=l3_slice, l3_ways=base.l3_ways)
        self._hierarchy_config = slice_cfg
        self._cores: list[_Core] = []

    # ------------------------------------------------------------------
    def run(self, traces: dict[str, Iterable[MemoryAccess]]) -> None:
        """Run one trace per core (``{workload_name: trace}``); the dict
        must have at most ``num_cores`` entries."""
        if len(traces) > self.num_cores:
            raise ConfigError(
                f"{len(traces)} traces for {self.num_cores} cores")
        self._cores = [
            _Core(i, name, iter(trace),
                  CacheHierarchy(self._hierarchy_config,
                                 self.stats.child(f"core{i}_caches")))
            for i, (name, trace) in enumerate(traces.items())
        ]
        # Event-driven interleave: always step the earliest core.
        ready: list[tuple[int, int]] = [(0, c.core_id) for c in self._cores]
        heapq.heapify(ready)
        while ready:
            _, core_id = heapq.heappop(ready)
            core = self._cores[core_id]
            access = next(core.trace, None)
            if access is None:
                core.done = True
                continue
            self._execute(core, access)
            heapq.heappush(ready, (core.cycle, core_id))

    def _execute(self, core: _Core, access: MemoryAccess) -> None:
        core.cycle += access.gap + 1
        core.instructions += access.gap + 1
        core.accesses += 1
        line = self.controller.amap.line_of(access.addr)
        if line >= self.config.data_capacity:
            raise AddressError(
                f"trace address {access.addr:#x} beyond the data region")
        if access.kind is AccessType.READ:
            result = core.hierarchy.load(line)
            if result.miss_to_memory:
                outcome = self.controller.read_data(line, core.cycle)
                core.cycle += outcome.latency
                core.load_stalls += outcome.latency
        elif access.kind is AccessType.WRITE:
            result = core.hierarchy.store(line)
        else:
            result = core.hierarchy.persist(line)
            outcome = self.controller.write_data(line, access.data,
                                                 core.cycle, persist=True)
            core.cycle += outcome.cpu_stall
            core.persist_stalls += outcome.cpu_stall
        for writeback in result.writebacks:
            if writeback < self.config.data_capacity:
                self.controller.write_data(writeback, None, core.cycle,
                                           persist=False)
        self.controller.tick(core.cycle)

    # ------------------------------------------------------------------
    def results(self) -> list[CoreResult]:
        return [core.result() for core in self._cores]

    @property
    def makespan(self) -> int:
        """Cycles until the slowest core finished."""
        return max((core.cycle for core in self._cores), default=0)

    def crash(self) -> None:
        self.controller.prepare_crash()
        dirty = [line for core in self._cores
                 for line in core.hierarchy.drop_all()]
        if self.config.eadr:
            for line in sorted(set(dirty)):
                if line < self.config.data_capacity:
                    self.controller.write_data(line, None, self.makespan,
                                               persist=False)
        self.controller.crash()

    def recover(self):
        return self.controller.recover()


def offset_trace(trace: Iterable[MemoryAccess],
                 base: int) -> Iterator[MemoryAccess]:
    """Shift a trace's addresses by ``base`` (give each co-running
    program its own slice of the physical address space, as a
    multi-programmed run would)."""
    for access in trace:
        yield MemoryAccess(access.kind, access.addr + base,
                           gap=access.gap, data=access.data)


def partitioned_workloads(config: SystemConfig, names: list[str],
                          operations: int, seed: int = 42
                          ) -> dict[str, Iterator[MemoryAccess]]:
    """Build one workload per name, each confined to an equal slice of
    the data region (disjoint address spaces, multi-programmed style)."""
    from repro.workloads import make_workload
    if not names:
        raise ConfigError("need at least one workload")
    block = 64 * 64  # counter-block granularity keeps slices aligned
    slice_bytes = (config.data_capacity // len(names)) // block * block
    if slice_bytes <= 0:
        raise ConfigError("data region too small to partition")
    traces: dict[str, Iterator[MemoryAccess]] = {}
    for i, name in enumerate(names):
        workload = make_workload(name, slice_bytes, operations,
                                 seed=seed + i)
        traces[f"{name}#{i}"] = offset_trace(workload.trace(),
                                             i * slice_bytes)
    return traces
