"""Split-counter blocks for counter-mode encryption.

A counter block covers 64 user-data lines with one shared *major* counter
plus one narrow per-line *minor* counter (paper §II-B).  Counter blocks
double as the **leaf nodes of the SGX-style integrity tree** (§II-D3), so
each block also carries a 64-bit HMAC.

Layout substitution (documented in DESIGN.md §2): the paper quotes 7-bit
minors, but a 64-bit major + 64x7-bit minors already fills the whole 64 B
line, leaving no room for the leaf HMAC the recovery scheme verifies.  We
shrink minors to 6 bits so the leaf node packs exactly into one line::

    64 (major) + 64 x 6 (minors) + 64 (HMAC) = 512 bits = 64 B

Overflow behaviour is identical, just more frequent (every 64 writes to a
line instead of 128), which if anything *stresses* the overflow path the
paper glosses over.

The **dummy counter** of a leaf (paper Fig 7, generalised to split
counters) is defined as ``major * 64 + sum(minors) (mod 2^56)``.  It grows
by exactly 1 per ordinary write; on an overflow it jumps by
``64 - sum(minors_before_reset)`` (possibly "backwards" modularly), and
SCUE propagates that *delta* to the Recovery_root so the
root-equals-sum-of-leaf-dummies invariant stays exact (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressError, ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.util.bitfield import BitPacker, BitUnpacker, checked_sum
from repro.util.crypto import KeyedMac

MINOR_BITS = 6
MINORS_PER_BLOCK = 64
MAJOR_BITS = 64
#: Counter width used for dummy-counter arithmetic (matches SIT node
#: counters so parent counters can hold any child sum).
COUNTER_SUM_BITS = 56
MINOR_LIMIT = 1 << MINOR_BITS


@dataclass(frozen=True)
class OverflowEvent:
    """Raised data for a minor-counter overflow: the caller (the secure
    memory controller) must re-encrypt all 64 covered data lines with the
    new major counter."""

    block_index: int
    old_major: int
    new_major: int
    #: dummy-counter change caused by the overflowing write, to be
    #: propagated to ancestors / the Recovery_root instead of +1.
    dummy_delta: int


@dataclass
class CounterBlock:
    """One CME counter block == one SIT leaf node.

    ``index`` is the block's position in the counter region (its media
    address is ``AddressMap.counter_block_addr(index)``).  ``hmac`` is the
    node's integrity MAC; it is marked stale by counter mutations and
    recomputed by the owning scheme before the block is persisted.
    """

    index: int
    major: int = 0
    minors: list[int] = field(default_factory=lambda: [0] * MINORS_PER_BLOCK)
    hmac: int = 0
    hmac_stale: bool = False

    def __post_init__(self) -> None:
        if len(self.minors) != MINORS_PER_BLOCK:
            raise ConfigError(
                f"counter block needs {MINORS_PER_BLOCK} minors")

    # ------------------------------------------------------------------
    # Counter arithmetic
    # ------------------------------------------------------------------
    def minor_of(self, slot: int) -> int:
        if not 0 <= slot < MINORS_PER_BLOCK:
            raise AddressError(f"minor slot {slot} out of range")
        return self.minors[slot]

    def dummy_counter(self, bits: int = COUNTER_SUM_BITS) -> int:
        """The leaf's dummy counter: its total write count,
        ``major * 64 + sum(minors)`` modulo the tree's counter width
        (56-bit for the paper's 8-ary layout; see module docstring)."""
        return checked_sum(
            [self.major * MINORS_PER_BLOCK] + self.minors, bits)

    def bump(self, slot: int) -> OverflowEvent | None:
        """Record one write to the data line in ``slot``.

        Increments the minor counter; on overflow performs the major bump +
        minor reset and returns the :class:`OverflowEvent` (otherwise
        ``None``).  Always leaves :attr:`hmac_stale` set.
        """
        if not 0 <= slot < MINORS_PER_BLOCK:
            raise AddressError(f"minor slot {slot} out of range")
        self.hmac_stale = True
        before = self.dummy_counter()
        self.minors[slot] += 1
        if self.minors[slot] < MINOR_LIMIT:
            return None
        old_major = self.major
        self.major += 1
        self.minors = [0] * MINORS_PER_BLOCK
        delta = checked_sum([self.dummy_counter(), -before],
                            COUNTER_SUM_BITS)
        return OverflowEvent(self.index, old_major, self.major, delta)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _counter_image(self) -> bytes:
        packer = BitPacker()
        packer.add(self.major & ((1 << MAJOR_BITS) - 1), MAJOR_BITS)
        for minor in self.minors:
            packer.add(minor, MINOR_BITS)
        return packer.to_bytes()

    def compute_hmac(self, mac: KeyedMac, node_addr: int,
                     parent_counter: int) -> int:
        """HMAC over (address, all counters, parent counter) — the SIT node
        MAC recipe of Fig 4 applied to the leaf layout."""
        return mac.mac(node_addr, self._counter_image(), parent_counter)

    def seal(self, mac: KeyedMac, node_addr: int, parent_counter: int) -> None:
        """Recompute and store the HMAC (done when the block is about to be
        persisted)."""
        self.hmac = self.compute_hmac(mac, node_addr, parent_counter)
        self.hmac_stale = False

    @property
    def is_blank(self) -> bool:
        """True for a never-written block (all-zero media image); blank
        blocks verify against a zero parent counter without an HMAC."""
        return self.hmac == 0 and self.major == 0 and not any(self.minors)

    def verify(self, mac: KeyedMac, node_addr: int,
               parent_counter: int) -> bool:
        """Check the stored HMAC against a recomputation (blank blocks are
        trusted-fresh iff the parent counter is also zero)."""
        if self.is_blank:
            return parent_counter == 0
        return self.hmac == self.compute_hmac(mac, node_addr, parent_counter)

    # ------------------------------------------------------------------
    # Serialisation (the on-media 64 B image)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        packer = BitPacker()
        packer.add(self.major & ((1 << MAJOR_BITS) - 1), MAJOR_BITS)
        for minor in self.minors:
            packer.add(minor, MINOR_BITS)
        packer.add(self.hmac, 64)
        return packer.to_bytes(CACHE_LINE_SIZE)

    @classmethod
    def from_bytes(cls, index: int, data: bytes) -> "CounterBlock":
        if len(data) != CACHE_LINE_SIZE:
            raise ConfigError("counter block image must be 64 bytes")
        unpacker = BitUnpacker(data)
        major = unpacker.take(MAJOR_BITS)
        minors = unpacker.take_many(MINOR_BITS, MINORS_PER_BLOCK)
        hmac = unpacker.take(64)
        return cls(index=index, major=major, minors=minors, hmac=hmac)

    def clone(self) -> "CounterBlock":
        """Deep copy (attack injection keeps pristine snapshots)."""
        return CounterBlock(self.index, self.major, list(self.minors),
                            self.hmac, self.hmac_stale)
