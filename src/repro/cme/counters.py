"""Split-counter blocks for counter-mode encryption.

A counter block covers 64 user-data lines with one shared *major* counter
plus one narrow per-line *minor* counter (paper §II-B).  Counter blocks
double as the **leaf nodes of the SGX-style integrity tree** (§II-D3), so
each block also carries a 64-bit HMAC.

Layout substitution (documented in DESIGN.md §2): the paper quotes 7-bit
minors, but a 64-bit major + 64x7-bit minors already fills the whole 64 B
line, leaving no room for the leaf HMAC the recovery scheme verifies.  We
shrink minors to 6 bits so the leaf node packs exactly into one line::

    64 (major) + 64 x 6 (minors) + 64 (HMAC) = 512 bits = 64 B

Overflow behaviour is identical, just more frequent (every 64 writes to a
line instead of 128), which if anything *stresses* the overflow path the
paper glosses over.

The **dummy counter** of a leaf (paper Fig 7, generalised to split
counters) is defined as ``major * 64 + sum(minors) (mod 2^56)``.  It grows
by exactly 1 per ordinary write; on an overflow it jumps by
``64 - sum(minors_before_reset)`` (possibly "backwards" modularly), and
SCUE propagates that *delta* to the Recovery_root so the
root-equals-sum-of-leaf-dummies invariant stays exact (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressError, ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.util.bitfield import checked_sum
from repro.util.crypto import KeyedMac

MINOR_BITS = 6
MINORS_PER_BLOCK = 64
MAJOR_BITS = 64
#: Counter width used for dummy-counter arithmetic (matches SIT node
#: counters so parent counters can hold any child sum).
COUNTER_SUM_BITS = 56
MINOR_LIMIT = 1 << MINOR_BITS

_MAJOR_MASK = (1 << MAJOR_BITS) - 1
_HMAC_MASK = (1 << 64) - 1
#: Bits of (major + minors) counter payload in the 64 B image.
_IMAGE_BITS = MAJOR_BITS + MINORS_PER_BLOCK * MINOR_BITS
_IMAGE_BYTES = (_IMAGE_BITS + 7) // 8

#: Raw-image parse memo for :meth:`CounterBlock.from_bytes`.  The access
#: loop re-loads the same few thousand media images constantly; parsing is
#: a pure function of the 64 raw bytes, so the field split is cached (the
#: constructed block is always fresh — callers mutate blocks freely).
_PARSE_MEMO: dict[bytes, tuple[int, tuple[int, ...], int]] = {}
_PARSE_MEMO_LIMIT = 1 << 15

#: Content-keyed counter-image memo: packing is a pure function of
#: (major, minors), and each write packs the same state twice (once to
#: MAC it at seal time, once to serialise it for media), so the second
#: pack is a dict hit.  Any counter mutation changes the key.
_IMAGE_MEMO: dict[tuple[int, tuple[int, ...]], bytes] = {}
_IMAGE_MEMO_LIMIT = 1 << 15


@dataclass(frozen=True, slots=True)
class OverflowEvent:
    """Raised data for a minor-counter overflow: the caller (the secure
    memory controller) must re-encrypt all 64 covered data lines with the
    new major counter."""

    block_index: int
    old_major: int
    new_major: int
    #: dummy-counter change caused by the overflowing write, to be
    #: propagated to ancestors / the Recovery_root instead of +1.
    dummy_delta: int


@dataclass(slots=True)
class CounterBlock:
    """One CME counter block == one SIT leaf node.

    ``index`` is the block's position in the counter region (its media
    address is ``AddressMap.counter_block_addr(index)``).  ``hmac`` is the
    node's integrity MAC; it is marked stale by counter mutations and
    recomputed by the owning scheme before the block is persisted.
    """

    index: int
    major: int = 0
    minors: list[int] = field(default_factory=lambda: [0] * MINORS_PER_BLOCK)
    hmac: int = 0
    hmac_stale: bool = False

    def __post_init__(self) -> None:
        if len(self.minors) != MINORS_PER_BLOCK:
            raise ConfigError(
                f"counter block needs {MINORS_PER_BLOCK} minors")

    # ------------------------------------------------------------------
    # Counter arithmetic
    # ------------------------------------------------------------------
    def minor_of(self, slot: int) -> int:
        if not 0 <= slot < MINORS_PER_BLOCK:
            raise AddressError(f"minor slot {slot} out of range")
        return self.minors[slot]

    def dummy_counter(self, bits: int = COUNTER_SUM_BITS) -> int:
        """The leaf's dummy counter: its total write count,
        ``major * 64 + sum(minors)`` modulo the tree's counter width
        (56-bit for the paper's 8-ary layout; see module docstring)."""
        return (self.major * MINORS_PER_BLOCK + sum(self.minors)) \
            & ((1 << bits) - 1)

    def bump(self, slot: int) -> OverflowEvent | None:
        """Record one write to the data line in ``slot``.

        Increments the minor counter; on overflow performs the major bump +
        minor reset and returns the :class:`OverflowEvent` (otherwise
        ``None``).  Always leaves :attr:`hmac_stale` set.
        """
        if not 0 <= slot < MINORS_PER_BLOCK:
            raise AddressError(f"minor slot {slot} out of range")
        self.hmac_stale = True
        bumped = self.minors[slot] + 1
        if bumped < MINOR_LIMIT:
            # No overflow: the dummy counter grows by exactly 1, no need
            # to sum 64 minors twice to discover that.
            self.minors[slot] = bumped
            return None
        before = self.dummy_counter()
        self.minors[slot] = bumped
        old_major = self.major
        self.major += 1
        self.minors = [0] * MINORS_PER_BLOCK
        delta = checked_sum([self.dummy_counter(), -before],
                            COUNTER_SUM_BITS)
        return OverflowEvent(self.index, old_major, self.major, delta)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _counter_image(self) -> bytes:
        # Direct shift-or packing of the (major, minors) fields — same
        # little-endian layout BitPacker produced, an order of magnitude
        # cheaper on the access path.  Field-width validation is kept: an
        # oversized counter is model corruption and must not pack silently.
        key = (self.major, tuple(self.minors))
        image = _IMAGE_MEMO.get(key)
        if image is not None:
            return image
        value = self.major & _MAJOR_MASK
        shift = MAJOR_BITS
        for minor in self.minors:
            if minor < 0 or minor >> MINOR_BITS:
                raise ConfigError(
                    f"value {minor} does not fit in {MINOR_BITS} bits")
            value |= minor << shift
            shift += MINOR_BITS
        image = value.to_bytes(_IMAGE_BYTES, "little")
        if len(_IMAGE_MEMO) >= _IMAGE_MEMO_LIMIT:
            _IMAGE_MEMO.clear()
        _IMAGE_MEMO[key] = image
        return image

    def compute_hmac(self, mac: KeyedMac, node_addr: int,
                     parent_counter: int) -> int:
        """HMAC over (address, all counters, parent counter) — the SIT node
        MAC recipe of Fig 4 applied to the leaf layout.

        Memoized by *content*: the key is the full counter state itself,
        so a verify of an unchanged block is a dict hit while any counter
        or address mutation forms a new key and recomputes — tampering can
        never be answered from the cache.
        """
        memo = mac.memo
        key = ("leaf", node_addr, self.major, tuple(self.minors),
               parent_counter)
        value = memo.get(key)
        if value is None:
            value = mac.mac_uncached(node_addr, self._counter_image(),
                                     parent_counter)
            if len(memo) >= mac.MEMO_LIMIT:
                memo.clear()
            memo[key] = value
        return value

    def seal(self, mac: KeyedMac, node_addr: int, parent_counter: int) -> None:
        """Recompute and store the HMAC (done when the block is about to be
        persisted)."""
        self.hmac = self.compute_hmac(mac, node_addr, parent_counter)
        self.hmac_stale = False

    @property
    def is_blank(self) -> bool:
        """True for a never-written block (all-zero media image); blank
        blocks verify against a zero parent counter without an HMAC."""
        return self.hmac == 0 and self.major == 0 and not any(self.minors)

    def verify(self, mac: KeyedMac, node_addr: int,
               parent_counter: int) -> bool:
        """Check the stored HMAC against a recomputation (blank blocks are
        trusted-fresh iff the parent counter is also zero)."""
        if self.is_blank:
            return parent_counter == 0
        return self.hmac == self.compute_hmac(mac, node_addr, parent_counter)

    # ------------------------------------------------------------------
    # Serialisation (the on-media 64 B image)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        if self.hmac < 0 or self.hmac >> 64:
            raise ConfigError(
                f"value {self.hmac} does not fit in 64 bits")
        value = int.from_bytes(self._counter_image(), "little") \
            | (self.hmac << _IMAGE_BITS)
        return value.to_bytes(CACHE_LINE_SIZE, "little")

    @classmethod
    def from_bytes(cls, index: int, data: bytes) -> "CounterBlock":
        if len(data) != CACHE_LINE_SIZE:
            raise ConfigError("counter block image must be 64 bytes")
        parsed = _PARSE_MEMO.get(data)
        if parsed is None:
            value = int.from_bytes(data, "little")
            major = value & _MAJOR_MASK
            minors = tuple(
                (value >> shift) & (MINOR_LIMIT - 1)
                for shift in range(MAJOR_BITS, _IMAGE_BITS, MINOR_BITS))
            hmac = (value >> _IMAGE_BITS) & _HMAC_MASK
            if len(_PARSE_MEMO) >= _PARSE_MEMO_LIMIT:
                _PARSE_MEMO.clear()
            parsed = _PARSE_MEMO[bytes(data)] = (major, minors, hmac)
        major, minors, hmac = parsed
        return cls(index=index, major=major, minors=list(minors), hmac=hmac)

    def clone(self) -> "CounterBlock":
        """Deep copy (attack injection keeps pristine snapshots)."""
        return CounterBlock(self.index, self.major, list(self.minors),
                            self.hmac, self.hmac_stale)
