"""Counter-mode encryption (CME): split-counter blocks and the encryption
engine that turns them into one-time pads (paper §II-B, Fig 1)."""

from repro.cme.counters import (
    CounterBlock,
    MINOR_BITS,
    MINORS_PER_BLOCK,
    OverflowEvent,
)
from repro.cme.encryption import CMEEngine

__all__ = [
    "CounterBlock",
    "MINOR_BITS",
    "MINORS_PER_BLOCK",
    "OverflowEvent",
    "CMEEngine",
]
