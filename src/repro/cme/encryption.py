"""The counter-mode encryption engine (paper §II-B, Fig 1).

Encrypts/decrypts 64 B user-data lines with one-time pads derived from
(line address, major counter, minor counter).  The OTP for a *read* can be
generated while the line is in flight from NVM, so decryption adds no
latency; for a *write* the pad must reflect the freshly bumped minor
counter.  Minor-counter overflow forces re-encryption of all 64 lines the
block covers — the engine exposes :meth:`reencrypt_block` for the
controller to apply when :meth:`repro.cme.counters.CounterBlock.bump`
reports an overflow.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cme.counters import CounterBlock, MINORS_PER_BLOCK
from repro.errors import ConfigError
from repro.mem.address import AddressMap, CACHE_LINE_SIZE
from repro.mem.nvm import NVMDevice
from repro.util.crypto import make_otp, xor_bytes
from repro.util.stats import StatGroup


class CMEEngine:
    """Counter-mode encryption over an :class:`AddressMap`-shaped NVM."""

    #: Entry cap on the pad memo (64 B pads; ~4 MB at the cap).
    _PAD_MEMO_LIMIT = 1 << 16

    def __init__(self, amap: AddressMap, key: bytes = b"repro-cme-key",
                 stats: StatGroup | None = None) -> None:
        self.amap = amap
        self._key = key
        group = stats or StatGroup("cme")
        self.stats = group
        self._encrypts = group.counter("encrypts")
        self._decrypts = group.counter("decrypts")
        self._reencrypted_lines = group.counter("reencrypted_lines")
        # A pad is a pure function of (key, address, major, minor); the
        # read path regenerates the same pad for every re-read of a line
        # whose counters haven't moved, so memoize per engine (the key is
        # fixed per engine and excluded from the memo key).
        self._pads: dict[tuple[int, int, int], bytes] = {}

    # ------------------------------------------------------------------
    def _otp(self, data_line_addr: int, major: int, minor: int) -> bytes:
        key = (data_line_addr, major, minor)
        pad = self._pads.get(key)
        if pad is None:
            pad = make_otp(self._key, data_line_addr, major, minor)
            if len(self._pads) >= self._PAD_MEMO_LIMIT:
                self._pads.clear()
            self._pads[key] = pad
        return pad

    def encrypt(self, data_line_addr: int, plaintext: bytes,
                block: CounterBlock) -> bytes:
        """Encrypt ``plaintext`` for ``data_line_addr`` under the block's
        *current* counters (bump the counter first: pads must be fresh)."""
        slot = self.amap.minor_slot_of_data(data_line_addr)
        self._encrypts.add()
        pad = self._otp(data_line_addr, block.major, block.minor_of(slot))
        return xor_bytes(plaintext, pad)

    def decrypt(self, data_line_addr: int, ciphertext: bytes,
                block: CounterBlock) -> bytes:
        """Decrypt a line previously produced by :meth:`encrypt` under the
        same counter values."""
        slot = self.amap.minor_slot_of_data(data_line_addr)
        self._decrypts.add()
        pad = self._otp(data_line_addr, block.major, block.minor_of(slot))
        return xor_bytes(ciphertext, pad)

    # ------------------------------------------------------------------
    def reencrypt_block(self, nvm: NVMDevice, block: CounterBlock,
                        old_major: int, old_minors: Sequence[int]) -> int:
        """Re-encrypt the 64 data lines covered by ``block`` after a minor
        overflow (§II-B): each covered ciphertext in NVM is decrypted under
        the pre-overflow counters and re-encrypted under the new major with
        reset minors.

        The controller snapshots ``old_minors`` *before* calling
        :meth:`CounterBlock.bump`, because the reset destroys them.  Note
        the overflowing slot's snapshot still holds the pad actually used
        for its last encryption (the bump that overflowed never produced a
        pad — the line is re-encrypted fresh here).

        Returns the number of lines rewritten (for traffic accounting).
        """
        if len(old_minors) != MINORS_PER_BLOCK:
            raise ConfigError("old_minors must cover the whole block")
        base_line = block.index * MINORS_PER_BLOCK * CACHE_LINE_SIZE
        rewritten = 0
        for slot in range(MINORS_PER_BLOCK):
            addr = base_line + slot * CACHE_LINE_SIZE
            ciphertext = nvm.peek_line(addr)
            plaintext = xor_bytes(
                ciphertext, self._otp(addr, old_major, old_minors[slot]))
            fresh = xor_bytes(
                plaintext,
                self._otp(addr, block.major, block.minor_of(slot)))
            nvm.poke_line(addr, fresh)
            rewritten += 1
        self._reencrypted_lines.add(rewritten)
        return rewritten
