"""Performance regression harness for the simulator's hot path.

Every figure and campaign funnels through the same per-access loop
(address map -> metadata cache -> counter/tree walk -> KeyedMac ->
WPQ/NVM); :mod:`repro.perf` measures that loop deterministically so
optimizations can be proven and regressions caught:

* :func:`run_benchmarks` — warmup + best-of-N-median microbenchmarks
  (the raw access loop, each scheme, and end-to-end fig10-quick), each
  reporting accesses/sec, wall seconds, and a sha256 digest of the
  simulation result so *any* behavioural drift is detected alongside
  timing drift;
* :func:`save_report` / :func:`load_report` — the versioned
  ``BENCH_perf.json`` schema;
* :func:`compare_reports` — gate a fresh run against a committed
  baseline (fail on >10% throughput regression; a result-digest
  mismatch always fails, advisory mode or not) and diff the
  candidate's scalar/epoch benchmark pairs (an epoch row must
  digest-match its scalar twin — the byte-identical oracle applied
  across engines).

``repro-sim perf`` / ``repro-sim perf compare`` are the CLI front ends
(docs/performance.md).
"""

from repro.perf.harness import (
    BENCH_NAMES,
    ENGINE_PAIRS,
    SCHEMA_VERSION,
    BenchResult,
    compare_reports,
    load_report,
    report_rows,
    run_benchmarks,
    save_report,
)

__all__ = [
    "BENCH_NAMES",
    "ENGINE_PAIRS",
    "SCHEMA_VERSION",
    "BenchResult",
    "compare_reports",
    "load_report",
    "report_rows",
    "run_benchmarks",
    "save_report",
]
