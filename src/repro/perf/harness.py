"""Deterministic microbenchmarks over the simulator's per-access path.

Methodology
-----------
Every benchmark is *seed-deterministic*: the workload trace, the scheme
behaviour and therefore the simulation result are identical from run to
run, so each benchmark reports two independent things:

* **throughput** — wall-clock accesses/sec, measured as one untimed
  warmup run followed by ``repeats`` timed runs of which the *median*
  wall time counts (best-of-N medians absorb scheduler noise without
  rewarding a lucky outlier);
* **a result digest** — sha256 over the canonical JSON of the
  simulation result (via :func:`repro.bench.export.to_jsonable`, the
  same serialisation the figure exports use).  The digest must never
  change under a performance PR: byte-identical results are the
  contract that makes hot-path optimization safe.

The benchmark set:

* ``access_loop`` — the default (``engine="auto"``) access loop: one
  SCUE system at fig10-quick scale driven by a pregenerated trace —
  the epoch-batched engine where eligible, i.e. what a user actually
  gets.  This is the number the ROADMAP's "runs as fast as the
  hardware allows" goal is tracked by.
* ``epoch_loop`` — the same system with ``engine="epoch"`` *forced*
  (a fallback raises instead of silently measuring the scalar loop).
  Its digest must equal ``access_loop``'s; :func:`compare_reports`
  checks that pairing on every run.
* ``scheme:<name>`` — the scalar reference loop for every registered
  scheme, so a regression in one scheme's policy hook is attributed
  to that scheme.
* ``epoch:<name>`` — the batched twin of each ``scheme:<name>`` row
  (``engine="epoch"`` forced).  Each pair must digest-match; the
  per-scheme split attributes a batched-path regression to the scheme
  tail that caused it.
* ``fig10_quick`` — end-to-end figure 10 at quick scale on a fixed
  workload subset: trace generation + campaign plumbing + the matrix of
  runs + ratio aggregation, i.e. what a user actually waits for.
* ``serve_cache_hit`` — the ``repro.serve`` fast path: repeated
  ``CampaignStore.get_raw`` fetches of one cached cell (one entry,
  hot after the first touch).  Throughput is fetches/sec; the row's
  ``extra`` field records p50/p99 per-fetch latency in nanoseconds —
  the "memcache speed" number docs/serving.md promises for cache hits.
"""

from __future__ import annotations

import hashlib
import json
import platform
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.bench.export import to_jsonable
from repro.bench.figures import fig10_execution_time
from repro.bench.harness import BenchScale
from repro.errors import ConfigError
from repro.secure import vector
from repro.sim.system import System
from repro.util.atomic import atomic_write_text
from repro.workloads import make_workload

SCHEMA_VERSION = 1

#: Schemes measured individually (every registered scheme, so policy-hook
#: regressions are attributed to the scheme that caused them).
PERF_SCHEMES = ("baseline", "lazy", "eager", "plp", "bmf-ideal", "scue")

#: Scalar/epoch benchmark pairs: the epoch twin must reproduce the
#: scalar twin's result digest exactly.  :func:`compare_reports` checks
#: every pair present in the candidate report and fails on divergence —
#: the same "byte-identical results" contract the baseline digests
#: enforce, applied across engines instead of across commits.
ENGINE_PAIRS: tuple[tuple[str, str], ...] = (
    ("access_loop", "epoch_loop"),
) + tuple((f"scheme:{scheme}", f"epoch:{scheme}")
          for scheme in PERF_SCHEMES)

#: Fixed workload subset for the end-to-end figure benchmark — small
#: enough to keep the harness interactive, mixed enough (dense array
#: updates + pointer-chasing queue churn) to exercise both cache-friendly
#: and cache-hostile branch walks.
FIG10_WORKLOADS = ("array", "queue")

#: Per-benchmark timed repeats (full / ``--quick``).  The warmup run is
#: always extra and untimed.
_REPEATS = {"access_loop": (5, 3), "scheme": (3, 1), "fig10_quick": (2, 1),
            "serve_cache_hit": (3, 1)}


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's outcome (one row of ``BENCH_perf.json``)."""

    name: str
    accesses: int
    wall_seconds: float
    accesses_per_sec: float
    digest: str
    repeats: int
    #: Optional benchmark-specific measurements (e.g. latency
    #: percentiles).  Informational: compare_reports never reads it.
    extra: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        row = {
            "accesses": self.accesses,
            "wall_seconds": round(self.wall_seconds, 6),
            "accesses_per_sec": round(self.accesses_per_sec, 1),
            "digest": self.digest,
            "repeats": self.repeats,
        }
        if self.extra is not None:
            row["extra"] = self.extra
        return row


def result_digest(value: Any) -> str:
    """sha256 over the canonical JSON form of a simulation result."""
    payload = json.dumps(to_jsonable(value), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Benchmark bodies.  Each returns ``(accesses, digestable_result)``.
# ----------------------------------------------------------------------
def _run_scheme_once(scheme: str, scale: BenchScale, trace: list,
                     engine: str = "auto") -> tuple[int, Any]:
    system = System(scale.config(scheme), engine=engine)
    system.run(iter(trace))
    return len(trace), system.result("perf")


def _scheme_bench(scheme: str,
                  engine: str = "auto") -> Callable[[], tuple[int, Any]]:
    scale = BenchScale.quick()
    workload = make_workload("array", scale.data_capacity,
                             scale.operations, seed=42)
    trace = list(workload.trace())

    def run() -> tuple[int, Any]:
        return _run_scheme_once(scheme, scale, trace, engine)

    return run


def _fig10_bench() -> Callable[[], tuple[int, Any]]:
    scale = BenchScale.quick()
    accesses = len(FIG10_WORKLOADS) * len(PERF_SCHEMES) * scale.operations

    def run() -> tuple[int, Any]:
        figure = fig10_execution_time(scale, workloads=FIG10_WORKLOADS,
                                      seed=42)
        # Digest the full per-cell results, not just the ratio table:
        # a drift that cancels out in the ratios must still fail.
        return accesses, {"figure": figure,
                          "cells": figure.matrix.results}

    return run


def _serve_cache_hit_bench(fetches: int = 2000
                           ) -> Callable[[], tuple[int, Any]]:
    """Timed fetches of one cached cell through the service store.

    Setup is lazy (first call, i.e. the untimed warmup): compute one
    real quick-scale cell and put it in a throwaway
    :class:`~repro.serve.storage.CampaignStore`.  Timed runs then
    measure ``get_raw`` only — the exact call the HTTP layer makes for
    a cache hit.  Per-fetch latencies land in ``run.extra()`` as
    p50/p99 nanoseconds.
    """
    state: dict[str, Any] = {}

    def setup() -> None:
        import tempfile

        from repro.campaign.cache import cell_key
        from repro.campaign.executor import execute_cell
        from repro.campaign.spec import CampaignSpec
        from repro.serve.storage import CampaignStore

        scale = BenchScale.quick()
        spec = CampaignSpec.matrix(scale, ["array"], ("scue",),
                                   seed=42, name="serve-bench")
        cell = spec.cells[0]
        store = CampaignStore(
            tempfile.mkdtemp(prefix="repro-perf-serve-"))
        store.put(cell, execute_cell(cell), wall_time=0.0)
        state["store"] = store
        state["key"] = cell_key(cell)

    def run() -> tuple[int, Any]:
        if not state:
            setup()
        store, key = state["store"], state["key"]
        samples: list[int] = []
        data = b""
        for _ in range(fetches):
            start = time.perf_counter_ns()
            data = store.get_raw(key)
            samples.append(time.perf_counter_ns() - start)
        samples.sort()
        state["percentiles"] = {
            "fetch_p50_ns": samples[len(samples) // 2],
            "fetch_p99_ns": samples[min(len(samples) - 1,
                                        int(len(samples) * 0.99))],
        }
        # Digest the served entry: a fetch path that altered (or tore)
        # the payload must fail the determinism check.
        return fetches, json.loads(data)

    run.extra = lambda: dict(state.get("percentiles", {}))
    return run


def _benchmarks(names: tuple[str, ...] | None = None
                ) -> list[tuple[str, str, Callable[[], tuple[int, Any]]]]:
    """``(name, repeat_class, runner)`` for every selected benchmark."""
    table: list[tuple[str, str, Callable[[], tuple[int, Any]]]] = [
        ("access_loop", "access_loop", _scheme_bench("scue")),
    ]
    # The forced-epoch rows raise on ineligibility instead of silently
    # measuring the scalar loop, so scalar-only environments (no numpy)
    # simply don't offer them.
    if vector.HAVE_NUMPY:
        table.append(("epoch_loop", "access_loop",
                      _scheme_bench("scue", engine="epoch")))
    for scheme in PERF_SCHEMES:
        table.append((f"scheme:{scheme}", "scheme",
                      _scheme_bench(scheme, engine="scalar")))
    if vector.HAVE_NUMPY:
        for scheme in PERF_SCHEMES:
            table.append((f"epoch:{scheme}", "scheme",
                          _scheme_bench(scheme, engine="epoch")))
    table.append(("fig10_quick", "fig10_quick", _fig10_bench()))
    table.append(("serve_cache_hit", "serve_cache_hit",
                  _serve_cache_hit_bench()))
    if names is not None:
        known = {name for name, _, _ in table}
        unknown = set(names) - known
        if unknown:
            raise ConfigError(
                f"unknown benchmark(s) {sorted(unknown)}; "
                f"choose from {sorted(known)}")
        table = [row for row in table if row[0] in names]
    return table


BENCH_NAMES: tuple[str, ...] = tuple(name for name, _, _ in _benchmarks())


def run_benchmarks(quick: bool = False,
                   names: tuple[str, ...] | None = None,
                   echo: Callable[[str], None] | None = None
                   ) -> dict[str, Any]:
    """Run the benchmark set and return the ``BENCH_perf.json`` payload.

    ``quick`` lowers the repeat counts (CI smoke mode) without touching
    workload sizes, so digests stay comparable with full runs.
    """
    say = echo or (lambda line: None)
    results: dict[str, dict[str, Any]] = {}
    for name, repeat_class, runner in _benchmarks(names):
        repeats = _REPEATS[repeat_class][1 if quick else 0]
        accesses, result = runner()          # warmup, untimed
        digest = result_digest(result)
        walls: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            accesses, result = runner()
            walls.append(time.perf_counter() - start)
            repeat_digest = result_digest(result)
            if repeat_digest != digest:
                raise ConfigError(
                    f"benchmark {name!r} is non-deterministic: digest "
                    f"{repeat_digest[:12]} != {digest[:12]} across repeats")
        wall = statistics.median(walls)
        extra_fn = getattr(runner, "extra", None)
        bench = BenchResult(name, accesses, wall,
                            accesses / wall if wall else 0.0,
                            digest, repeats,
                            extra=extra_fn() if extra_fn else None)
        results[name] = bench.to_dict()
        say(f"  {name:<18s} {bench.accesses_per_sec:>12,.0f} acc/s  "
            f"({wall:.3f}s median of {repeats}, digest "
            f"{digest[:12]})")
    return {
        "schema_version": SCHEMA_VERSION,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "benchmarks": results,
    }


# ----------------------------------------------------------------------
# Persistence + comparison
# ----------------------------------------------------------------------
def save_report(report: dict[str, Any], path: str | Path) -> None:
    atomic_write_text(Path(path),
                      json.dumps(report, indent=2, sort_keys=True)
                      + "\n")


def load_report(path: str | Path) -> dict[str, Any]:
    report = json.loads(Path(path).read_text())
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"{path}: unsupported perf schema version {version!r} "
            f"(expected {SCHEMA_VERSION})")
    if not isinstance(report.get("benchmarks"), dict):
        raise ConfigError(f"{path}: missing 'benchmarks' table")
    return report


def report_rows(label: str, report: dict[str, Any]
                ) -> list[dict[str, Any]]:
    """Tidy ``{snapshot, benchmark, accesses_per_sec, wall_seconds}``
    rows for one perf report — the trajectory feed of the report
    bundle (repro.viz) across committed ``BENCH_perf*.json`` baselines.
    """
    rows: list[dict[str, Any]] = []
    for name, bench in sorted(report["benchmarks"].items()):
        rows.append({
            "snapshot": label,
            "benchmark": name,
            "accesses_per_sec": bench.get("accesses_per_sec", 0.0),
            "wall_seconds": bench.get("wall_seconds", 0.0),
        })
    return rows


def compare_reports(baseline: dict[str, Any], candidate: dict[str, Any],
                    threshold: float = 0.10,
                    advisory: bool = False) -> tuple[int, list[str]]:
    """Compare a fresh perf report against a committed baseline.

    Returns ``(exit_code, report_lines)``.  A throughput drop larger
    than ``threshold`` fails (or warns under ``advisory`` — CI boxes are
    noisy); a **result-digest mismatch always fails**, advisory or not,
    because it means the optimization changed simulation behaviour.

    The candidate's scalar/epoch benchmark pairs (:data:`ENGINE_PAIRS`)
    are also diffed against *each other*: an epoch row whose digest
    diverges from its scalar twin always fails (the batched engine no
    longer reproduces the reference result), and an epoch row more than
    ``threshold`` slower than its scalar twin fails like any other
    regression — the batched path exists to be faster.
    """
    lines: list[str] = []
    failed = False
    base_benches = baseline["benchmarks"]
    cand_benches = candidate["benchmarks"]
    for name, base in sorted(base_benches.items()):
        cand = cand_benches.get(name)
        if cand is None:
            lines.append(f"MISSING   {name}: not in candidate report")
            failed = True
            continue
        if base["digest"] != cand["digest"]:
            lines.append(
                f"DIGEST    {name}: result digest changed "
                f"({base['digest'][:12]} -> {cand['digest'][:12]}) — "
                "simulation output is no longer byte-identical")
            failed = True
            continue
        base_rate = base["accesses_per_sec"]
        cand_rate = cand["accesses_per_sec"]
        ratio = cand_rate / base_rate if base_rate else 0.0
        status = "OK"
        if ratio < 1.0 - threshold:
            status = "ADVISORY" if advisory else "REGRESSED"
            if not advisory:
                failed = True
        lines.append(
            f"{status:<9s} {name}: {cand_rate:,.0f} acc/s vs "
            f"{base_rate:,.0f} baseline ({ratio:.2f}x)")
    extra = sorted(set(cand_benches) - set(base_benches))
    for name in extra:
        lines.append(f"NEW       {name}: no baseline entry (ignored)")
    for scalar_name, epoch_name in ENGINE_PAIRS:
        scalar = cand_benches.get(scalar_name)
        epoch = cand_benches.get(epoch_name)
        if scalar is None or epoch is None:
            continue
        if scalar["digest"] != epoch["digest"]:
            lines.append(
                f"ENGINE    {epoch_name}: digest diverges from "
                f"{scalar_name} ({scalar['digest'][:12]} -> "
                f"{epoch['digest'][:12]}) — the batched engine no "
                "longer reproduces the scalar result")
            failed = True
            continue
        scalar_rate = scalar["accesses_per_sec"]
        epoch_rate = epoch["accesses_per_sec"]
        ratio = epoch_rate / scalar_rate if scalar_rate else 0.0
        status = "PAIR"
        if ratio < 1.0 - threshold:
            status = "ADVISORY" if advisory else "REGRESSED"
            if not advisory:
                failed = True
        lines.append(
            f"{status:<9s} {epoch_name}: {epoch_rate:,.0f} acc/s vs "
            f"{scalar_rate:,.0f} scalar twin ({ratio:.2f}x)")
    return (1 if failed else 0), lines
