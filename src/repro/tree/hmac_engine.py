"""The HMAC hardware unit: functional MAC plus a hash-latency cost model.

Table II configures the hash latency at {20, 40, 80, 160} cycles (default
40).  The key timing property the paper leans on (§II-D4) is that SIT can
compute all HMACs of a branch **in parallel** once counters are bumped —
one hash latency for the whole branch — while BMT must hash sequentially
(each parent hashes its children's digests), costing ``levels x latency``.
:meth:`branch_hash_cycles` encodes exactly that distinction; schemes ask it
for critical-path costs instead of hard-coding latencies.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs import events as ev
from repro.obs.recorder import NULL_RECORDER
from repro.util.crypto import KeyedMac
from repro.util.stats import StatGroup

DEFAULT_HASH_LATENCY = 40


class HashEngine:
    """Keyed-MAC unit with per-hash latency accounting."""

    def __init__(self, latency_cycles: int = DEFAULT_HASH_LATENCY,
                 key: bytes = b"repro-tree-key",
                 stats: StatGroup | None = None,
                 recorder=None) -> None:
        if latency_cycles <= 0:
            raise ConfigError("hash latency must be positive")
        self.latency_cycles = latency_cycles
        self.mac = KeyedMac(key)
        self.obs = recorder if recorder is not None else NULL_RECORDER
        group = stats or StatGroup("hash_engine")
        self.stats = group
        self._hashes = group.counter("hashes")
        self._busy_cycles = group.counter("busy_cycles")

    def charge(self, count: int = 1, parallel: bool = True) -> int:
        """Account for ``count`` MAC computations and return the latency
        they add to whoever is waiting: one latency if the unit can compute
        them in parallel (SIT), ``count`` latencies if they are chained
        (BMT-style, each hash consumes the previous digest)."""
        if count <= 0:
            return 0
        self._hashes.value += count
        cycles = self.latency_cycles if parallel \
            else self.latency_cycles * count
        self._busy_cycles.value += cycles
        if self.obs.enabled:
            self.obs.instant(ev.EV_HMAC, ev.TRACK_HASH, count=count,
                             parallel=parallel, cycles=cycles)
        return cycles

    def branch_hash_cycles(self, levels: int, parallel: bool = True) -> int:
        """Critical-path cycles to re-MAC a ``levels``-node branch."""
        return self.charge(levels, parallel=parallel)
