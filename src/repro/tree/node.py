"""SGX-style integrity-tree node (paper §II-D3, Fig 4).

One 64 B node packs ``arity`` counters plus one 64-bit HMAC.  The paper's
SIT uses eight 56-bit counters (8 x 56 + 64 = 512 bits exactly); the
VAULT/MorphCtr-style wide layouts of §VII trade counter width for fan-out
(16 x 28 or 32 x 14 — see ``COUNTER_BITS_FOR_ARITY``), shortening the
tree at the cost of earlier counter wrap-around.

Counter ``j`` covers the node's ``j``-th child; the HMAC covers the
node's address, all counters, and the corresponding counter in the
*parent* node — the inverted dependency (low-level nodes depend on
high-level nodes) that makes vanilla SIT impossible to reconstruct
bottom-up (§III-D) and that SCUE's dummy counter breaks.

The **dummy counter** (Fig 7) is the modular sum of the node's counters;
under eager/SCUE updating it equals the node's parent counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.mem.address import COUNTER_BITS_FOR_ARITY, CACHE_LINE_SIZE, \
    TREE_ARITY
from repro.util.bitfield import BitPacker, BitUnpacker, checked_sum
from repro.util.crypto import KeyedMac

#: The paper's default layout: eight 56-bit counters.
COUNTER_BITS = COUNTER_BITS_FOR_ARITY[TREE_ARITY]
HMAC_BITS = 64
COUNTER_MASK = (1 << COUNTER_BITS) - 1


@dataclass
class SITNode:
    """An intermediate SIT node: ``arity`` counters + a 64-bit HMAC.

    ``level``/``index`` position the node in the tree (level 1 = parents
    of counter blocks); they are bookkeeping, not part of the media image
    — the node's *address* enters the HMAC instead.
    """

    level: int
    index: int
    counters: list[int] | None = None
    hmac: int = 0
    hmac_stale: bool = False
    arity: int = TREE_ARITY
    #: Derived from arity when omitted; an explicit mismatch is an error.
    counter_bits: int | None = field(default=None)

    def __post_init__(self) -> None:
        if self.arity not in COUNTER_BITS_FOR_ARITY:
            raise ConfigError(f"unsupported node arity {self.arity}")
        if self.counters is None:
            self.counters = [0] * self.arity
        if len(self.counters) != self.arity:
            raise ConfigError(
                f"SIT node needs {self.arity} counters, "
                f"got {len(self.counters)}")
        expected_bits = COUNTER_BITS_FOR_ARITY[self.arity]
        if self.counter_bits is None:
            self.counter_bits = expected_bits
        if self.counter_bits != expected_bits:
            raise ConfigError(
                f"arity {self.arity} needs {expected_bits}-bit counters")

    @property
    def _mask(self) -> int:
        return (1 << self.counter_bits) - 1

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def counter(self, slot: int) -> int:
        return self.counters[slot]

    def set_counter(self, slot: int, value: int) -> None:
        """Overwrite a child counter (SCUE: parent counter := child dummy)."""
        self.counters[slot] = value & self._mask
        self.hmac_stale = True

    def bump_counter(self, slot: int, delta: int = 1) -> None:
        """Increment a child counter (lazy/eager: +1 per child event)."""
        self.counters[slot] = (self.counters[slot] + delta) & self._mask
        self.hmac_stale = True

    def dummy_counter(self) -> int:
        """Sum of the node's counters modulo the counter width (Fig 7) —
        what the parent counter must equal under counter-summing."""
        return checked_sum(self.counters, self.counter_bits)

    @property
    def is_blank(self) -> bool:
        """True for a never-written node (all-zero media image); blank
        nodes verify against a zero parent counter without an HMAC."""
        return self.hmac == 0 and not any(self.counters)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _counter_image(self) -> bytes:
        packer = BitPacker()
        for counter in self.counters:
            packer.add(counter, self.counter_bits)
        return packer.to_bytes()

    def compute_hmac(self, mac: KeyedMac, node_addr: int,
                     parent_counter: int) -> int:
        """HMAC(address || counters || parent counter) per Fig 4."""
        return mac.mac(node_addr, self._counter_image(), parent_counter)

    def seal(self, mac: KeyedMac, node_addr: int, parent_counter: int) -> None:
        self.hmac = self.compute_hmac(mac, node_addr, parent_counter)
        self.hmac_stale = False

    def verify(self, mac: KeyedMac, node_addr: int,
               parent_counter: int) -> bool:
        if self.is_blank:
            return parent_counter == 0
        return self.hmac == self.compute_hmac(mac, node_addr, parent_counter)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        packer = BitPacker()
        for counter in self.counters:
            packer.add(counter, self.counter_bits)
        packer.add(self.hmac, HMAC_BITS)
        return packer.to_bytes(CACHE_LINE_SIZE)

    @classmethod
    def from_bytes(cls, level: int, index: int, data: bytes,
                   arity: int = TREE_ARITY) -> "SITNode":
        if len(data) != CACHE_LINE_SIZE:
            raise ConfigError("SIT node image must be 64 bytes")
        bits = COUNTER_BITS_FOR_ARITY[arity]
        unpacker = BitUnpacker(data)
        counters = unpacker.take_many(bits, arity)
        hmac = unpacker.take(HMAC_BITS)
        return cls(level=level, index=index, counters=counters, hmac=hmac,
                   arity=arity, counter_bits=bits)

    def clone(self) -> "SITNode":
        return SITNode(self.level, self.index, list(self.counters),
                       self.hmac, self.hmac_stale, self.arity,
                       self.counter_bits)
