"""SGX-style integrity-tree node (paper §II-D3, Fig 4).

One 64 B node packs ``arity`` counters plus one 64-bit HMAC.  The paper's
SIT uses eight 56-bit counters (8 x 56 + 64 = 512 bits exactly); the
VAULT/MorphCtr-style wide layouts of §VII trade counter width for fan-out
(16 x 28 or 32 x 14 — see ``COUNTER_BITS_FOR_ARITY``), shortening the
tree at the cost of earlier counter wrap-around.

Counter ``j`` covers the node's ``j``-th child; the HMAC covers the
node's address, all counters, and the corresponding counter in the
*parent* node — the inverted dependency (low-level nodes depend on
high-level nodes) that makes vanilla SIT impossible to reconstruct
bottom-up (§III-D) and that SCUE's dummy counter breaks.

The **dummy counter** (Fig 7) is the modular sum of the node's counters;
under eager/SCUE updating it equals the node's parent counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.mem.address import COUNTER_BITS_FOR_ARITY, CACHE_LINE_SIZE, \
    TREE_ARITY
from repro.util.crypto import KeyedMac

#: The paper's default layout: eight 56-bit counters.
COUNTER_BITS = COUNTER_BITS_FOR_ARITY[TREE_ARITY]
HMAC_BITS = 64
COUNTER_MASK = (1 << COUNTER_BITS) - 1

#: Counter payload always fills 448 bits (arity x width == 448 for every
#: supported layout), leaving exactly 64 bits for the HMAC.
_IMAGE_BITS = 448
_IMAGE_BYTES = _IMAGE_BITS // 8
_HMAC_MASK = (1 << HMAC_BITS) - 1

#: Raw-image parse memo (see the counterpart in repro.cme.counters): the
#: field split of a 64 B image is pure, so repeated loads of the same
#: media bytes skip the bit slicing.  Keyed by (image, arity) since the
#: same bytes mean different counters under a different layout.
_PARSE_MEMO: dict[tuple[bytes, int], tuple[tuple[int, ...], int]] = {}
_PARSE_MEMO_LIMIT = 1 << 15

#: Content-keyed counter-image memo (see repro.cme.counters counterpart):
#: seal + serialise pack the same state twice per flush; the second pack
#: is a dict hit.  Keyed by the counters themselves plus their width.
_IMAGE_MEMO: dict[tuple[int, tuple[int, ...]], bytes] = {}
_IMAGE_MEMO_LIMIT = 1 << 15


@dataclass(slots=True)
class SITNode:
    """An intermediate SIT node: ``arity`` counters + a 64-bit HMAC.

    ``level``/``index`` position the node in the tree (level 1 = parents
    of counter blocks); they are bookkeeping, not part of the media image
    — the node's *address* enters the HMAC instead.
    """

    level: int
    index: int
    counters: list[int] | None = None
    hmac: int = 0
    hmac_stale: bool = False
    arity: int = TREE_ARITY
    #: Derived from arity when omitted; an explicit mismatch is an error.
    counter_bits: int | None = field(default=None)

    def __post_init__(self) -> None:
        if self.arity not in COUNTER_BITS_FOR_ARITY:
            raise ConfigError(f"unsupported node arity {self.arity}")
        if self.counters is None:
            self.counters = [0] * self.arity
        if len(self.counters) != self.arity:
            raise ConfigError(
                f"SIT node needs {self.arity} counters, "
                f"got {len(self.counters)}")
        expected_bits = COUNTER_BITS_FOR_ARITY[self.arity]
        if self.counter_bits is None:
            self.counter_bits = expected_bits
        if self.counter_bits != expected_bits:
            raise ConfigError(
                f"arity {self.arity} needs {expected_bits}-bit counters")

    @property
    def _mask(self) -> int:
        return (1 << self.counter_bits) - 1

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def counter(self, slot: int) -> int:
        return self.counters[slot]

    def set_counter(self, slot: int, value: int) -> None:
        """Overwrite a child counter (SCUE: parent counter := child dummy)."""
        self.counters[slot] = value & self._mask
        self.hmac_stale = True

    def bump_counter(self, slot: int, delta: int = 1) -> None:
        """Increment a child counter (lazy/eager: +1 per child event)."""
        self.counters[slot] = (self.counters[slot] + delta) & self._mask
        self.hmac_stale = True

    def dummy_counter(self) -> int:
        """Sum of the node's counters modulo the counter width (Fig 7) —
        what the parent counter must equal under counter-summing."""
        return sum(self.counters) & ((1 << self.counter_bits) - 1)

    @property
    def is_blank(self) -> bool:
        """True for a never-written node (all-zero media image); blank
        nodes verify against a zero parent counter without an HMAC."""
        return self.hmac == 0 and not any(self.counters)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _counter_image(self) -> bytes:
        # Direct shift-or packing (BitPacker-compatible layout, far
        # cheaper); width validation kept — oversized counters are model
        # corruption and must not pack silently.
        bits = self.counter_bits
        key = (bits, tuple(self.counters))
        image = _IMAGE_MEMO.get(key)
        if image is not None:
            return image
        value = 0
        shift = 0
        for counter in self.counters:
            if counter < 0 or counter >> bits:
                raise ConfigError(
                    f"value {counter} does not fit in {bits} bits")
            value |= counter << shift
            shift += bits
        image = value.to_bytes(_IMAGE_BYTES, "little")
        if len(_IMAGE_MEMO) >= _IMAGE_MEMO_LIMIT:
            _IMAGE_MEMO.clear()
        _IMAGE_MEMO[key] = image
        return image

    def compute_hmac(self, mac: KeyedMac, node_addr: int,
                     parent_counter: int) -> int:
        """HMAC(address || counters || parent counter) per Fig 4.

        Content-keyed memo: the key is the node's full counter state, so
        an unchanged node verifies from the cache while any mutation (by
        the scheme or by attack injection) forms a new key and recomputes.
        """
        memo = mac.memo
        key = ("sit", node_addr, tuple(self.counters), parent_counter)
        value = memo.get(key)
        if value is None:
            value = mac.mac_uncached(node_addr, self._counter_image(),
                                     parent_counter)
            if len(memo) >= mac.MEMO_LIMIT:
                memo.clear()
            memo[key] = value
        return value

    def seal(self, mac: KeyedMac, node_addr: int, parent_counter: int) -> None:
        self.hmac = self.compute_hmac(mac, node_addr, parent_counter)
        self.hmac_stale = False

    def verify(self, mac: KeyedMac, node_addr: int,
               parent_counter: int) -> bool:
        if self.is_blank:
            return parent_counter == 0
        return self.hmac == self.compute_hmac(mac, node_addr, parent_counter)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        if self.hmac < 0 or self.hmac >> HMAC_BITS:
            raise ConfigError(
                f"value {self.hmac} does not fit in {HMAC_BITS} bits")
        value = int.from_bytes(self._counter_image(), "little") \
            | (self.hmac << _IMAGE_BITS)
        return value.to_bytes(CACHE_LINE_SIZE, "little")

    @classmethod
    def from_bytes(cls, level: int, index: int, data: bytes,
                   arity: int = TREE_ARITY) -> "SITNode":
        if len(data) != CACHE_LINE_SIZE:
            raise ConfigError("SIT node image must be 64 bytes")
        bits = COUNTER_BITS_FOR_ARITY[arity]
        memo_key = (bytes(data), arity)
        parsed = _PARSE_MEMO.get(memo_key)
        if parsed is None:
            value = int.from_bytes(data, "little")
            mask = (1 << bits) - 1
            counters = tuple((value >> shift) & mask
                             for shift in range(0, _IMAGE_BITS, bits))
            hmac = (value >> _IMAGE_BITS) & _HMAC_MASK
            if len(_PARSE_MEMO) >= _PARSE_MEMO_LIMIT:
                _PARSE_MEMO.clear()
            parsed = _PARSE_MEMO[memo_key] = (counters, hmac)
        counters, hmac = parsed
        return cls(level=level, index=index, counters=list(counters),
                   hmac=hmac, arity=arity, counter_bits=bits)

    def clone(self) -> "SITNode":
        return SITNode(self.level, self.index, list(self.counters),
                       self.hmac, self.hmac_stale, self.arity,
                       self.counter_bits)
