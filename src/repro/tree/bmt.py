"""Reference Bonsai Merkle Tree (paper §II-D2, Fig 3).

A BMT is a Merkle tree whose leaves are the CME *counter blocks* rather
than the user data: data integrity piggy-backs on per-line HMACs keyed by
counters, so protecting the (much smaller) counter space against replay
protects everything.  High-level nodes are built purely from low-level
nodes — the property SIT lacks and SCUE restores (§III-D) — so the BMT can
always be reconstructed bottom-up.

This implementation mirrors the structure the PLP and BMF baselines assume
natively.  It tracks per-update hash counts so examples can contrast BMT's
sequential hashing against SIT's parallel updates.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cme.counters import CounterBlock
from repro.errors import ConfigError, IntegrityError
from repro.mem.address import TREE_ARITY
from repro.util.crypto import KeyedMac


class BonsaiMerkleTree:
    """An 8-ary hash tree over counter blocks."""

    def __init__(self, blocks: Sequence[CounterBlock],
                 arity: int = TREE_ARITY,
                 key: bytes = b"repro-bmt-key") -> None:
        if not blocks:
            raise ConfigError("BMT needs at least one counter block")
        self.arity = arity
        self._mac = KeyedMac(key)
        self._blocks = [block.clone() for block in blocks]
        self.levels: list[list[bytes]] = []
        self.sequential_hashes = 0
        self._build()

    # ------------------------------------------------------------------
    def _digest_block(self, block: CounterBlock) -> bytes:
        return self._mac.mac_bytes(block.index, block.to_bytes())

    def _digest_group(self, level: int, index: int,
                      children: Sequence[bytes]) -> bytes:
        return self._mac.mac_bytes(level, index, b"".join(children))

    def _build(self) -> None:
        self.levels = [[self._digest_block(b) for b in self._blocks]]
        while len(self.levels[-1]) > 1:
            below = self.levels[-1]
            level_no = len(self.levels)
            self.levels.append([
                self._digest_group(level_no, i // self.arity,
                                   below[i:i + self.arity])
                for i in range(0, len(below), self.arity)
            ])

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    @property
    def height(self) -> int:
        return len(self.levels) - 1

    # ------------------------------------------------------------------
    def bump(self, block_index: int, slot: int) -> int:
        """Record a data write: bump the covering counter and propagate
        digests to the root *sequentially* (each level's hash needs the
        level below).  Returns the hash count (== height + 1), the
        sequential cost SIT avoids (§II-D4)."""
        if not 0 <= block_index < len(self._blocks):
            raise ConfigError(f"block {block_index} out of range")
        self._blocks[block_index].bump(slot)
        hashes = 1
        self.levels[0][block_index] = \
            self._digest_block(self._blocks[block_index])
        child = block_index
        for level_no in range(1, len(self.levels)):
            parent = child // self.arity
            lo = parent * self.arity
            group = self.levels[level_no - 1][lo:lo + self.arity]
            self.levels[level_no][parent] = \
                self._digest_group(level_no, parent, group)
            hashes += 1
            child = parent
        self.sequential_hashes += hashes
        return hashes

    def block(self, index: int) -> CounterBlock:
        """A snapshot of a tracked counter block (cloned: the tree's copy
        stays authoritative)."""
        return self._blocks[index].clone()

    def verify_block(self, block: CounterBlock) -> bool:
        """Check a claimed counter block against the digest chain."""
        if self._digest_block(block) != self.levels[0][block.index]:
            return False
        child = block.index
        for level_no in range(1, len(self.levels)):
            parent = child // self.arity
            lo = parent * self.arity
            group = self.levels[level_no - 1][lo:lo + self.arity]
            if self.levels[level_no][parent] != \
                    self._digest_group(level_no, parent, group):
                return False
            child = parent
        return True

    def reconstruct_root(self, blocks: Sequence[CounterBlock]) -> bytes:
        """Root rebuilt bottom-up from claimed counter blocks — always
        possible in a BMT, the contrast with vanilla SIT."""
        digests = [self._digest_block(b) for b in blocks]
        level_no = 1
        while len(digests) > 1:
            digests = [
                self._digest_group(level_no, i // self.arity,
                                   digests[i:i + self.arity])
                for i in range(0, len(digests), self.arity)
            ]
            level_no += 1
        return digests[0]

    def check_recovery(self, blocks: Sequence[CounterBlock]) -> None:
        """Raise :class:`IntegrityError` when the rebuilt root mismatches
        the stored root."""
        if self.reconstruct_root(blocks) != self.root:
            raise IntegrityError(
                "BMT recovery failed: reconstructed root does not match "
                "the stored root")
