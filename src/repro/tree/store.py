"""Typed access to the SIT's on-media image.

The metadata regions of the NVM hold raw 64 B lines; :class:`SITStore`
(de)serialises them into :class:`~repro.cme.counters.CounterBlock` leaves
(level 0) and :class:`~repro.tree.node.SITNode` intermediates, so the
memory controller, crash machinery, recovery and attack injection all share
one definition of what lives where.

``counted=True`` routes through the device's access-counting path (runtime
traffic); ``counted=False`` uses peek/poke (recovery-time and test
inspection, accounted separately by the recovery cost model).
"""

from __future__ import annotations

from repro.cme.counters import CounterBlock
from repro.mem.address import AddressMap
from repro.mem.nvm import NVMDevice
from repro.tree.node import SITNode

TreeNode = CounterBlock | SITNode


class SITStore:
    """Load/save SIT nodes to their media addresses."""

    def __init__(self, nvm: NVMDevice, amap: AddressMap) -> None:
        self.nvm = nvm
        self.amap = amap
        # node_addr is pure delegation on the per-access path; binding the
        # translator once drops a call frame per node-address lookup.
        self.node_addr = amap.tree_node_addr

    def node_addr(self, level: int, index: int) -> int:
        """Media address of node ``(level, index)`` (bound directly to
        :meth:`AddressMap.tree_node_addr` in ``__init__``)."""
        return self.amap.tree_node_addr(level, index)

    def load(self, level: int, index: int, counted: bool = True) -> TreeNode:
        """Deserialise the node at ``(level, index)`` from media."""
        addr = self.node_addr(level, index)
        raw = self.nvm.read_line(addr) if counted else self.nvm.peek_line(addr)
        if level == 0:
            return CounterBlock.from_bytes(index, raw)
        return SITNode.from_bytes(level, index, raw, arity=self.amap.arity)

    def save(self, node: TreeNode, counted: bool = True) -> int:
        """Serialise ``node`` back to its media address; returns the
        address (handy for WPQ accounting)."""
        if isinstance(node, CounterBlock):
            addr = self.amap.counter_block_addr(node.index)
        else:
            addr = self.node_addr(node.level, node.index)
        raw = node.to_bytes()
        if counted:
            self.nvm.write_line(addr, raw)
        else:
            self.nvm.poke_line(addr, raw)
        return addr

    def coords_of(self, node: TreeNode) -> tuple[int, int]:
        if isinstance(node, CounterBlock):
            return 0, node.index
        return node.level, node.index
