"""Integrity trees: the SGX-style integrity tree (SIT) used by all
evaluated schemes, plus Merkle Tree and Bonsai Merkle Tree reference
implementations (paper §II-D)."""

from repro.tree.bmt import BonsaiMerkleTree
from repro.tree.hmac_engine import HashEngine
from repro.tree.merkle import MerkleTree
from repro.tree.node import COUNTER_BITS, SITNode
from repro.tree.store import SITStore

__all__ = [
    "BonsaiMerkleTree",
    "HashEngine",
    "MerkleTree",
    "COUNTER_BITS",
    "SITNode",
    "SITStore",
]
