"""Reference 8-ary Merkle Tree over user data (paper §II-D1, Fig 2).

Self-contained (operates on a list of leaf byte strings rather than the
simulated NVM): the evaluated schemes all run on the SIT, but the MT is the
conceptual baseline the paper's recovery story is framed against — "rebuild
from the leaves and compare roots" — so we keep a faithful implementation
for tests, examples, and the tree-comparison example.

Levels are stored bottom-up: ``levels[0]`` is the leaf digests, the last
level is a single root digest.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError, IntegrityError
from repro.mem.address import TREE_ARITY
from repro.util.crypto import KeyedMac


class MerkleTree:
    """An 8-ary hash tree over opaque leaf payloads."""

    def __init__(self, leaves: Sequence[bytes], arity: int = TREE_ARITY,
                 key: bytes = b"repro-mt-key") -> None:
        if not leaves:
            raise ConfigError("Merkle tree needs at least one leaf")
        if arity < 2:
            raise ConfigError("arity must be >= 2")
        self.arity = arity
        self._mac = KeyedMac(key)
        self._leaves = [bytes(leaf) for leaf in leaves]
        self.levels: list[list[bytes]] = []
        self._build()

    # ------------------------------------------------------------------
    def _digest_leaf(self, index: int, payload: bytes) -> bytes:
        return self._mac.mac_bytes(index, payload)

    def _digest_group(self, level: int, index: int,
                      children: Sequence[bytes]) -> bytes:
        return self._mac.mac_bytes(level, index, b"".join(children))

    def _build(self) -> None:
        self.levels = [[self._digest_leaf(i, leaf)
                        for i, leaf in enumerate(self._leaves)]]
        while len(self.levels[-1]) > 1:
            below = self.levels[-1]
            level_no = len(self.levels)
            parents = [
                self._digest_group(level_no, i // self.arity,
                                   below[i:i + self.arity])
                for i in range(0, len(below), self.arity)
            ]
            self.levels.append(parents)

    # ------------------------------------------------------------------
    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    @property
    def height(self) -> int:
        """Number of levels above the leaves."""
        return len(self.levels) - 1

    def update_leaf(self, index: int, payload: bytes) -> int:
        """Modify one leaf and propagate digests to the root (the eager
        update of §II-D4).  Returns the number of hash computations — the
        cost that motivates lazy schemes and SCUE."""
        if not 0 <= index < len(self._leaves):
            raise ConfigError(f"leaf {index} out of range")
        self._leaves[index] = bytes(payload)
        hashes = 1
        self.levels[0][index] = self._digest_leaf(index, payload)
        child = index
        for level_no in range(1, len(self.levels)):
            parent = child // self.arity
            lo = parent * self.arity
            group = self.levels[level_no - 1][lo:lo + self.arity]
            self.levels[level_no][parent] = \
                self._digest_group(level_no, parent, group)
            hashes += 1
            child = parent
        return hashes

    def verify_leaf(self, index: int, payload: bytes) -> bool:
        """Check a claimed leaf payload against the stored digest chain up
        to the root (what a read does)."""
        if self._digest_leaf(index, payload) != self.levels[0][index]:
            return False
        child = index
        for level_no in range(1, len(self.levels)):
            parent = child // self.arity
            lo = parent * self.arity
            group = self.levels[level_no - 1][lo:lo + self.arity]
            if self.levels[level_no][parent] != \
                    self._digest_group(level_no, parent, group):
                return False
            child = parent
        return True

    def reconstruct_root(self, leaves: Sequence[bytes]) -> bytes:
        """Rebuild the root from scratch over ``leaves`` (the recovery flow
        of Fig 5a) without disturbing this tree's state."""
        rebuilt = MerkleTree(leaves, self.arity)
        rebuilt._mac = self._mac
        rebuilt._leaves = [bytes(leaf) for leaf in leaves]
        rebuilt._build()
        return rebuilt.root

    def check_recovery(self, leaves: Sequence[bytes]) -> None:
        """Raise :class:`IntegrityError` when the rebuilt root does not
        match the stored root — a detected attack (or an inconsistent
        crash)."""
        if self.reconstruct_root(leaves) != self.root:
            raise IntegrityError(
                "Merkle recovery failed: reconstructed root does not match "
                "the stored root")
