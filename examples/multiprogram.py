#!/usr/bin/env python3
"""Multi-programmed secure NVM: eight workloads, one controller.

Table II's testbed runs one application per core with all eight cores
sharing the memory controller — its metadata cache, write pending queue,
and NVM bandwidth.  This example co-runs the five persistent workloads
plus three SPEC-like apps on a :class:`MultiProgramSystem`, compares SCUE
against PLP under that contention, and finishes with a crash + recovery
of the shared tree (one Recovery_root covers all eight programs' data).

Run:  python examples/multiprogram.py
"""

from repro.bench.reporting import format_simple_table
from repro.sim import MultiProgramSystem, SystemConfig, partitioned_workloads

CAPACITY = 32 * 1024 * 1024
MIX = ["array", "btree", "hash", "queue", "rbtree", "mcf", "lbm", "gcc"]
OPERATIONS = 250


def corun(scheme: str) -> MultiProgramSystem:
    config = SystemConfig(scheme=scheme, data_capacity=CAPACITY,
                          tree_levels=9, metadata_cache_size=32 * 1024)
    system = MultiProgramSystem(config, cores=len(MIX))
    system.run(partitioned_workloads(config, MIX, OPERATIONS, seed=31))
    return system


def main() -> None:
    scue = corun("scue")
    plp = corun("plp")

    rows = []
    for s_core, p_core in zip(scue.results(), plp.results()):
        rows.append([
            s_core.workload,
            f"{s_core.cycles:,}",
            f"{p_core.cycles:,}",
            f"{p_core.cycles / s_core.cycles:.2f}x",
        ])
    print(format_simple_table(
        f"8-program co-run, shared secure controller "
        f"({OPERATIONS} ops/program)",
        ["program", "scue cycles", "plp cycles", "plp/scue"], rows))
    print(f"\nmakespan: scue {scue.makespan:,} cycles, "
          f"plp {plp.makespan:,} cycles "
          f"({plp.makespan / scue.makespan:.2f}x)")

    # One crash takes down all eight programs; one Recovery_root brings
    # the shared tree back.
    scue.crash()
    report = scue.recover()
    print(f"\ncrash + recovery of the shared tree: "
          f"{'SUCCESS' if report.success else 'FAILED'} "
          f"({report.metadata_reads:,} metadata reads, "
          f"{report.recovery_seconds * 1000:.2f} ms)")
    assert report.success


if __name__ == "__main__":
    main()
