#!/usr/bin/env python3
"""The crash window, visualised (paper §III-B, Figs 5/6).

Eager propagation updates the root ~40 cycles + branch-fetch time after
each persist.  This script crashes an eager system at increasing delays
after its last persist and shows recovery flipping from FAIL (inside the
window) to SUCCESS (outside it) — then repeats with SCUE, whose shortcut
update closes the window entirely.  It also demonstrates that eADR does
not help (§III-C): flushing caches at crash time cannot compute HMACs or
land in-flight root updates.

Run:  python examples/crash_window_demo.py
"""

from repro import System, SystemConfig
from repro.bench.reporting import format_simple_table
from repro.mem.trace import AccessType, MemoryAccess

CAPACITY = 4 * 1024 * 1024


def run_and_crash_after(scheme: str, idle_gap: int,
                        eadr: bool = False) -> tuple[bool, bool]:
    """Persist a line, idle ``idle_gap`` instructions, crash, recover.
    Returns (was_in_window, recovered)."""
    system = System(SystemConfig(scheme=scheme, data_capacity=CAPACITY,
                                 eadr=eadr))
    system.run([
        MemoryAccess(AccessType.PERSIST, 64 * i, gap=1) for i in range(8)
    ])
    if idle_gap:
        # Idle compute lets in-flight root updates land (they complete a
        # branch-fetch + one hash after the persist).
        system.run([MemoryAccess(AccessType.READ, 0, gap=idle_gap)])
    controller = system.controller
    in_window = getattr(controller, "in_window", False)
    system.crash()
    return in_window, system.recover().success


def main() -> None:
    print("Crash window demo: persist, idle N instructions, pull the plug."
          "\n")
    rows = []
    for idle in (0, 10, 1000):
        in_window, ok = run_and_crash_after("eager", idle)
        rows.append(["eager", idle, "yes" if in_window else "no",
                     "recovers" if ok else "FAILS"])
    for idle in (0, 1000):
        in_window, ok = run_and_crash_after("scue", idle)
        rows.append(["scue", idle, "n/a (no window)",
                     "recovers" if ok else "FAILS"])
    print(format_simple_table(
        "Recovery vs crash timing",
        ["scheme", "idle instrs before crash", "in crash window?",
         "recovery"], rows))

    print("\nAnd with eADR flushing every cache at crash time (§III-C):")
    in_window, ok = run_and_crash_after("eager", 0, eadr=True)
    print(f"  eager + eADR, crash in window -> "
          f"{'recovers' if ok else 'STILL FAILS'} "
          "(eADR moves bytes; it cannot hash or update the root)")
    _, ok = run_and_crash_after("scue", 0, eadr=False)
    print(f"  scue,          crash in window -> "
          f"{'recovers' if ok else 'fails'} "
          "(the Recovery_root was updated with the persist itself)")


if __name__ == "__main__":
    main()
