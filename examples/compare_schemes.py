#!/usr/bin/env python3
"""Compare every update scheme on one workload — a miniature Fig 9/10.

Runs the same persistent key-value (hash table) trace through all six
controllers and prints write latency, execution time, metadata traffic,
and — after an injected crash — whether each scheme's recovery survives.
This is the paper's whole argument in one table: only SCUE combines
near-baseline performance, crash-consistent recovery, and byte-sized
on-chip state.

Run:  python examples/compare_schemes.py
"""

from repro import System, SystemConfig, make_workload
from repro.bench.reporting import format_simple_table, human_bytes
from repro.crash import CrashPlan, run_with_crash

CAPACITY = 16 * 1024 * 1024
OPERATIONS = 600


def main() -> None:
    workload = make_workload("hash", CAPACITY, OPERATIONS, seed=11)
    trace = list(workload.trace())
    crash_point = len(trace) * 2 // 3

    rows = []
    baseline_latency = baseline_cycles = None
    for scheme in ("baseline", "lazy", "eager", "plp", "bmf-ideal", "scue"):
        config = SystemConfig(scheme=scheme, data_capacity=CAPACITY,
                              metadata_cache_size=16 * 1024, tree_levels=9)
        # Measured run (no crash) for the performance columns.
        system = System(config)
        system.run(trace)
        result = system.result(workload.name)
        if scheme == "baseline":
            baseline_latency = result.avg_write_latency
            baseline_cycles = result.cycles

        # Crash run for the recovery column.
        crashed = System(config)
        run_with_crash(crashed, iter(trace), CrashPlan(crash_point))
        report = crashed.recover()

        rows.append([
            scheme,
            f"{result.avg_write_latency / baseline_latency:.2f}x",
            f"{result.cycles / baseline_cycles:.2f}x",
            f"{result.metadata_accesses:,}",
            human_bytes(system.controller.onchip_overhead_bytes()),
            "recovers" if report.success else "FAILS (false attack)",
        ])

    print(format_simple_table(
        f"All schemes on '{workload.name}' "
        f"({OPERATIONS} ops, {len(trace)} accesses)",
        ["scheme", "write lat", "exec time", "meta accesses",
         "on-chip NV", "after crash"],
        rows))
    print("\nThe paper's pitch, condensed: PLP pays ~3x writes for its "
          "consistency,\nBMF-ideal pays megabytes of on-chip nvMC, "
          "lazy/eager pay with failed\nrecoveries — SCUE pays two 64-byte "
          "registers and one hash per persist.")


if __name__ == "__main__":
    main()
