#!/usr/bin/env python3
"""Quickstart: a secure NVM system with SCUE, end to end.

Builds a SCUE-protected memory system, runs a persistent workload through
it, power-fails the machine mid-run, recovers via counter-summing
reconstruction, and finally shows that a replay attack injected on the
"stolen DIMM" is caught by the Recovery_root.

Run:  python examples/quickstart.py
"""

from repro import System, SystemConfig, make_workload
from repro.crash import CrashPlan, replay_leaf, run_with_crash, snapshot_leaf


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a system: 16 MB of simulated PCM behind a SCUE controller.
    # ------------------------------------------------------------------
    config = SystemConfig(scheme="scue", data_capacity=16 * 1024 * 1024)
    system = System(config)
    print(f"scheme            : {system.controller.name}")
    print(f"tree levels       : {system.controller.amap.tree_levels} "
          f"(8-ary, {system.controller.amap.num_counter_blocks} leaf "
          "counter blocks)")
    print(f"on-chip overhead  : "
          f"{system.controller.onchip_overhead_bytes()} bytes "
          "(Running_root + Recovery_root)")

    # ------------------------------------------------------------------
    # 2. Run a persistent B-tree workload and crash it mid-flight.
    # ------------------------------------------------------------------
    workload = make_workload("btree", config.data_capacity,
                             operations=400, seed=7)
    executed = run_with_crash(system, workload.trace(),
                              CrashPlan(after_accesses=900))
    print(f"\ncrashed after     : {executed} memory accesses")
    print(f"cycles executed   : {system.cycle:,}")

    # ------------------------------------------------------------------
    # 3. Recover: reconstruct the SIT bottom-up from the persisted
    #    counter blocks and compare against the Recovery_root.
    # ------------------------------------------------------------------
    report = system.recover()
    print(f"\nrecovery          : "
          f"{'SUCCESS' if report.success else 'FAILED'}")
    print(f"  root matched    : {report.root_matched}")
    print(f"  leaf HMAC fails : {len(report.leaf_hmac_failures)}")
    print(f"  metadata reads  : {report.metadata_reads:,}")
    print(f"  est. time       : {report.recovery_seconds * 1000:.2f} ms "
          "(100 ns / metadata fetch)")
    assert report.success

    # ------------------------------------------------------------------
    # 4. Keep running after recovery — the tree is consistent again.
    # ------------------------------------------------------------------
    more = make_workload("btree", config.data_capacity,
                         operations=100, seed=8)
    system.run(more.trace())
    print("\npost-recovery run : OK "
          f"({system.result().persists} more persists verified)")

    # ------------------------------------------------------------------
    # 5. Now play attacker: record a counter block, let the victim
    #    overwrite it, crash, and replay the stale image.
    # ------------------------------------------------------------------
    controller = system.controller
    controller.write_data(0, b"victim data v1".ljust(64, b"\0"), cycle=10**9)
    stolen = snapshot_leaf(controller.store, 0)
    controller.write_data(0, b"victim data v2".ljust(64, b"\0"),
                          cycle=10**9 + 100)
    system.crash()
    replay_leaf(controller.store, stolen)    # the replay attack
    report = system.recover()
    print(f"\nreplay attack     : "
          f"{'DETECTED' if report.attack_reported else 'missed?!'}")
    print(f"  detail          : {report.detail}")
    assert report.attack_reported and not report.root_matched


if __name__ == "__main__":
    main()
