#!/usr/bin/env python3
"""Attack lab: play the adversary of the paper's threat model (§II-A).

You control the NVM DIMM — you can read and rewrite any line, record old
images, and splice them back (bus snooping / stolen DIMM).  You do not
control the chip, so no MAC keys and no root registers.  This script runs
every attack class from Table I against a SCUE system and shows which
defence catches each one, plus a bonus round against the insecure
baseline showing why integrity trees exist at all.

Run:  python examples/attack_lab.py
"""

from repro import IntegrityError, System, SystemConfig, make_workload
from repro.bench.reporting import format_simple_table
from repro.crash import (
    replay_leaf,
    roll_back_leaf,
    roll_forward_leaf,
    snapshot_leaf,
    tamper_data_line,
)
from repro.crash.attacks import combined_attack

CAPACITY = 8 * 1024 * 1024


def fresh_victim(scheme: str = "scue") -> System:
    """A machine with some history: a red-black tree workload ran on it."""
    system = System(SystemConfig(scheme=scheme, data_capacity=CAPACITY))
    system.run(make_workload("rbtree", CAPACITY, 150, seed=3).trace())
    return system


def verdict(report) -> str:
    if not report.attack_reported:
        return "MISSED"
    if report.leaf_hmac_failures:
        return "caught by leaf HMACs"
    return "caught by Recovery_root"


def main() -> None:
    rows = []

    # -- Roll-forward: enlarge a counter you don't own ------------------
    system = fresh_victim()
    system.crash()
    roll_forward_leaf(system.controller.store, 0, slot=2, amount=4)
    rows.append(["roll-forward", verdict(system.recover())])

    # -- Roll-back in place: shrink a counter, keep the old MAC ---------
    system = fresh_victim()
    system.controller.write_data(0, None, cycle=10**9)
    system.crash()
    roll_back_leaf(system.controller.store, 0, slot=0, amount=1)
    rows.append(["roll-back (in place)", verdict(system.recover())])

    # -- Replay: splice back a complete, internally consistent image ----
    system = fresh_victim()
    controller = system.controller
    controller.write_data(0, b"secret v1".ljust(64, b"\0"), cycle=10**9)
    loot = snapshot_leaf(controller.store, 0)
    controller.write_data(0, b"secret v2".ljust(64, b"\0"),
                          cycle=10**9 + 50)
    system.crash()
    replay_leaf(controller.store, loot)
    rows.append(["replay (old tuple)", verdict(system.recover())])

    # -- Combined: forward one leaf, back another — sum preserved -------
    system = fresh_victim()
    system.controller.write_data(64 * 64, None, cycle=10**9)
    system.crash()
    combined_attack(system.controller.store, forward_index=0,
                    back_index=1, slot=0, amount=1)
    rows.append(["forward + back (sum-preserving)",
                 verdict(system.recover())])

    # -- Plain data tampering, detected at read time --------------------
    system = fresh_victim()
    system.controller.write_data(0x8000, b"ledger row".ljust(64, b"\0"),
                                 cycle=10**9)
    tamper_data_line(system.controller.nvm, system.controller.amap, 0x8000)
    try:
        system.controller.read_data(0x8000, cycle=10**9 + 100)
        rows.append(["data bit-flip", "MISSED"])
    except IntegrityError:
        rows.append(["data bit-flip", "caught by data MAC (read path)"])

    print(format_simple_table("Attack lab vs SCUE (Table I, executable)",
                              ["attack", "outcome"], rows))

    # -- Bonus: the same replay against the insecure baseline -----------
    system = fresh_victim("baseline")
    controller = system.controller
    controller.write_data(0, b"balance=100".ljust(64, b"\0"), cycle=10**9)
    loot = snapshot_leaf(controller.store, 0)
    old_cipher = controller.nvm.peek_line(0)
    controller.write_data(0, b"balance=0".ljust(64, b"\0"),
                          cycle=10**9 + 50)
    system.crash()
    replay_leaf(controller.store, loot)
    controller.nvm.poke_line(0, old_cipher)          # replay data too
    controller.data_macs[0] = controller._data_mac(  # "ECC" replays along
        0, old_cipher, controller.store.load(0, 0, counted=False))
    report = system.recover()
    restored = controller.read_data(0, cycle=10**10).plaintext
    print("\nBonus — baseline (no integrity tree):")
    print(f"  recovery says    : "
          f"{'all good' if report.success else 'attack'}")
    print(f"  read-back        : {restored.rstrip(chr(0).encode())!r}")
    print("  the stale balance is back and nobody noticed — this is the "
          "replay\n  attack the integrity tree exists to stop.")


if __name__ == "__main__":
    main()
