#!/usr/bin/env python3
"""Drive an experiment campaign programmatically — a miniature of the
machinery behind ``repro-sim figures fig10 --jobs N``.

Declares a workload x scheme grid as a CampaignSpec, runs it through the
campaign engine with a result cache and a manifest, then runs it *again*
to show every cell coming back as a cache hit.  Kill the script partway
through the first run and re-run it: only the missing cells compute
(docs/benchmarks.md explains why that is safe).

Run:  python examples/campaign_sweep.py [jobs]
"""

import sys
import tempfile
from pathlib import Path

from repro.bench.harness import BenchScale
from repro.bench.reporting import format_simple_table
from repro.campaign import (
    CampaignSpec,
    ProgressReporter,
    RunManifest,
    run_campaign,
)

WORKLOADS = ("array", "queue", "hash")
SCHEMES = ("baseline", "lazy", "scue")


def sweep(spec: CampaignSpec, base: Path, jobs: int) -> None:
    outcome = run_campaign(
        spec, jobs=jobs,
        cache=base / "cache",
        manifest_path=base / "manifest.json",
        progress=ProgressReporter())
    outcome.raise_on_failure()

    rows = [[cell.cell_id, f"{result.avg_write_latency:.1f}",
             f"{result.cycles:,}"]
            for cell, result in outcome.iter_results()]
    print(format_simple_table(
        f"{spec.name}: {len(spec)} cells (jobs={jobs})",
        ["cell", "avg write lat (cy)", "cycles"], rows))

    # The manifest is plain JSON — read it back like `campaign status`.
    manifest = RunManifest.load(base / "manifest.json")
    counts = manifest.counts()
    print(f"computed {counts['done']}, cache hits "
          f"{counts['cached']}/{len(spec)}, "
          f"wall time {manifest.wall_time:.2f}s\n")


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    spec = CampaignSpec.matrix(BenchScale.quick(), WORKLOADS, SCHEMES,
                               name="example-sweep")
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
        base = Path(tmp)
        print("== first run: every cell computes ==")
        sweep(spec, base, jobs)
        print("== second run: every cell is a cache hit ==")
        sweep(spec, base, jobs)


if __name__ == "__main__":
    main()
