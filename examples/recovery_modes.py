#!/usr/bin/env python3
"""Recovery modes: full, targeted (STAR/AGIT/ASIT), and Osiris.

SCUE's counter-summing gives the SIT one *capability* — rebuild from the
leaves — and three ways to spend it.  Starting from one warmed, crashed
system state (branched with :func:`repro.sim.fork` so every mode sees an
identical crash), this example recovers it five ways and tabulates what
each costs at runtime and at recovery.

Run:  python examples/recovery_modes.py
"""

from repro.bench.reporting import format_simple_table
from repro.sim import System, SystemConfig, fork
from repro.workloads import make_workload

CAPACITY = 16 * 1024 * 1024
OPERATIONS = 500


def build_crashed(tracker: str = "none", osiris: int = 0) -> System:
    config = SystemConfig(
        scheme="scue", data_capacity=CAPACITY, tree_levels=9,
        metadata_cache_size=16 * 1024,
        recovery_tracker=tracker,
        leaf_write_through=osiris == 0,
        osiris_limit=osiris)
    system = System(config)
    system.run(make_workload("array", CAPACITY, OPERATIONS,
                             seed=19).trace())
    return system


def main() -> None:
    rows = []

    # Full counter-summing (no tracker): read every leaf.
    system = build_crashed()
    baseline_runtime_writes = \
        system.controller.stats.counter("meta_writes").value
    crashed = fork(system)
    crashed.crash()
    report = crashed.recover()
    rows.append(["full counter-summing", baseline_runtime_writes, 0,
                 f"{report.metadata_reads:,}",
                 "yes" if report.success else "NO"])

    # Targeted recovery under each tracker.
    for tracker in ("star", "agit", "asit"):
        system = build_crashed(tracker=tracker)
        st_writes = system.controller.tracker.runtime_write_overhead
        crashed = fork(system)
        crashed.crash()
        report = crashed.recover()
        rows.append([f"targeted ({tracker})",
                     system.controller.stats.counter("meta_writes").value,
                     st_writes,
                     f"{report.metadata_reads:,}",
                     "yes" if report.success else "NO"])

    # Osiris: relax leaf persistence entirely, recover counters from
    # data MACs.
    system = build_crashed(osiris=8)
    crashed = fork(system)
    crashed.crash()
    report = crashed.recover()
    rows.append(["osiris (limit 8)",
                 system.controller.stats.counter("meta_writes").value,
                 0,
                 f"{report.metadata_reads:,}",
                 "yes" if report.success else "NO"])

    print(format_simple_table(
        f"SCUE recovery modes (array, {OPERATIONS} persists, "
        "identical crash via fork)",
        ["mode", "runtime meta writes", "tracker ST writes",
         "recovery reads", "recovers"], rows))
    print(
        "\nThe spectrum: write-through + full rebuild is the simplest;"
        "\ntrackers shrink recovery reads (ASIT cheapest to recover,"
        "\ndearest at runtime); Osiris removes the runtime writes almost"
        "\nentirely and pays with a data-MAC counter search at recovery.")


if __name__ == "__main__":
    main()
